(** CVD wire protocol.

    File operations and their results are serialised into the shared
    page (§5.1: "the frontend puts the file operation arguments in a
    shared page").  Fixed little-endian encoding; one request and one
    response slot per channel.

    Every message form is declared exactly once, as a {!Wire_spec}
    field spec in {!req_specs} / {!resp_specs}; the encoder, the
    bounds-checked decoder, the post-decode sanitizer and the fuzz
    generator/mutator are all derived from that table.  Adding an
    operation is one spec entry plus the variant shims — not three
    hand-maintained offset copies that can drift. *)

module W = Wire_spec

type request =
  | Ropen of { path : string }
  | Rrelease of { vfd : int }
  | Rread of { vfd : int; buf : int; len : int }
  | Rwrite of { vfd : int; buf : int; len : int }
  | Rioctl of { vfd : int; cmd : int; arg : int64 }
  | Rmmap of { vfd : int; gva : int; len : int; pgoff : int }
  | Rfault of { vfd : int; gva : int }
  | Rmunmap of { vfd : int; gva : int; len : int }
  | Rpoll of { vfd : int; want_in : bool; want_out : bool; timeout_us : float }
  | Rfasync of { vfd : int; on : bool }
  | Rnoop (* the §6.1.1 latency microbenchmark *)
  | Rbatch of request list
      (* io_uring-style multi-op descriptor: one ring slot / one
         doorbell carries a length-prefixed batch of small file ops
         (evdev reads, PCM periods, netmap syncs).  Only fixed-size
         data-path operations may ride in a batch — memory-layout ops
         (open/mmap/fault/munmap) stay singletons — and batches do not
         nest. *)

type response =
  | Rok of int
  | Rerr of int (* positive errno code *)
  | Rpoll_reply of { pollin : bool; pollout : bool }
  | Rbatch_reply of response list
      (* one sub-response per sub-op, in submission order *)

let slot_size = 1024

(* Batch geometry: the multi-op payload must stay below the trace word
   at 1004, and each sub-op record is at most 28 bytes, so 32 sub-ops
   fit with headroom. *)
let max_batch_ops = 32

let w32 = W.w32
let r32 = W.r32

(* header: opcode @0, grant @4, vfd @8, transport sequence number
   @1008, issuing pid @1012 (the hypervisor resolves the guest
   process's page table from it) *)
let pid_off = 1012

(* The per-request sequence number lives in the descriptor itself, so
   a response carries back exactly which attempt it answers: under
   at-least-once retries a late response to a timed-out attempt must
   not be mistaken for the resend's answer.  The channel stamps it at
   publish time (it is transport state, not operation state). *)
let seq_off = 1008

let set_seq b seq = w32 b seq_off seq
let get_seq b = r32 b seq_off

(* The operation's trace id (Obs tracing), minted by the frontend and
   stamped next to the sequence number so every stage of the pipeline
   — transport, backend, hypervisor — can attribute its spans to the
   forwarded operation it serves.  0 = untraced. *)
let trace_off = 1004

let set_trace b id = w32 b trace_off id
let get_trace b = r32 b trace_off

exception Batch_overflow
exception Malformed = W.Malformed
exception Oversized = W.Oversized

type violation = W.violation = { field : string; detail : string }

let max_mmap_bytes = W.max_mmap_bytes
let max_vfd = W.max_vfd
let valid_path = W.valid_path

(* ---- the spec table: one declaration per message form ---- *)

let fu63 fname off = { W.fname; off; kind = W.Int W.U63 }
let fflag fname off = { W.fname; off; kind = W.Flag }

let vfd_ok =
  W.Vrange { field = "vfd"; min = 0; max = W.Max_vfd; detail = "out of range" }

let open_spec : request W.spec =
  {
    W.op = 1;
    name = "open";
    takes_vfd = false;
    batchable = false;
    fields =
      [
        {
          W.fname = "path";
          off = 16;
          kind = W.Str { len_off = 12; max = 256; reject = "path length" };
        };
      ];
    vchecks =
      [
        W.Vpath { field = "path"; detail = "not a devfs path (or NUL / dot-dot)" };
      ];
    build =
      (fun ~vfd:_ -> function [ W.S path ] -> Ropen { path } | _ -> assert false);
    parts = (function Ropen { path } -> (0, [ W.S path ]) | _ -> assert false);
  }

let release_spec : request W.spec =
  {
    W.op = 2;
    name = "release";
    takes_vfd = true;
    batchable = true;
    fields = [];
    vchecks = [ vfd_ok ];
    build = (fun ~vfd _ -> Rrelease { vfd });
    parts = (function Rrelease { vfd } -> (vfd, []) | _ -> assert false);
  }

let transfer_spec op name make split : request W.spec =
  {
    W.op;
    name;
    takes_vfd = true;
    batchable = true;
    fields = [ fu63 "buf" 16; fu63 "len" 24 ];
    vchecks =
      [
        vfd_ok;
        W.Vrange
          {
            field = "len";
            min = 0;
            max = W.Max_transfer;
            detail = "transfer larger than max_transfer_bytes";
          };
        W.Vrange
          { field = "buf"; min = 0; max = W.No_bound; detail = "negative user address" };
      ];
    build =
      (fun ~vfd -> function
        | [ W.I buf; W.I len ] -> make ~vfd ~buf ~len
        | _ -> assert false);
    parts = split;
  }

let read_spec =
  transfer_spec 3 "read"
    (fun ~vfd ~buf ~len -> Rread { vfd; buf; len })
    (function Rread { vfd; buf; len } -> (vfd, [ W.I buf; W.I len ]) | _ -> assert false)

let write_spec =
  transfer_spec 4 "write"
    (fun ~vfd ~buf ~len -> Rwrite { vfd; buf; len })
    (function
      | Rwrite { vfd; buf; len } -> (vfd, [ W.I buf; W.I len ]) | _ -> assert false)

let ioctl_spec : request W.spec =
  {
    W.op = 5;
    name = "ioctl";
    takes_vfd = true;
    batchable = true;
    fields = [ fu63 "cmd" 16; { W.fname = "arg"; off = 24; kind = W.Raw64 } ];
    vchecks =
      [
        vfd_ok;
        W.Vrange
          {
            field = "cmd";
            min = 0;
            max = W.Lit 0xffff_ffff;
            detail = "not a u32 ioctl number";
          };
      ];
    build =
      (fun ~vfd -> function
        | [ W.I cmd; W.I64 arg ] -> Rioctl { vfd; cmd; arg } | _ -> assert false);
    parts =
      (function
      | Rioctl { vfd; cmd; arg } -> (vfd, [ W.I cmd; W.I64 arg ]) | _ -> assert false);
  }

let mmap_spec : request W.spec =
  {
    W.op = 6;
    name = "mmap";
    takes_vfd = true;
    batchable = false;
    fields = [ fu63 "gva" 16; fu63 "len" 24; fu63 "pgoff" 32 ];
    vchecks =
      [
        vfd_ok;
        W.Vrange
          { field = "len"; min = 1; max = W.Max_mmap; detail = "mmap length out of range" };
        W.Vwrap { base = "gva"; len = "len"; detail = "range wraps" };
        W.Vrange { field = "pgoff"; min = 0; max = W.No_bound; detail = "negative" };
      ];
    build =
      (fun ~vfd -> function
        | [ W.I gva; W.I len; W.I pgoff ] -> Rmmap { vfd; gva; len; pgoff }
        | _ -> assert false);
    parts =
      (function
      | Rmmap { vfd; gva; len; pgoff } -> (vfd, [ W.I gva; W.I len; W.I pgoff ])
      | _ -> assert false);
  }

let fault_spec : request W.spec =
  {
    W.op = 7;
    name = "fault";
    takes_vfd = true;
    batchable = false;
    fields = [ fu63 "gva" 16 ];
    vchecks =
      [ vfd_ok; W.Vrange { field = "gva"; min = 0; max = W.No_bound; detail = "negative" } ];
    build =
      (fun ~vfd -> function [ W.I gva ] -> Rfault { vfd; gva } | _ -> assert false);
    parts = (function Rfault { vfd; gva } -> (vfd, [ W.I gva ]) | _ -> assert false);
  }

let munmap_spec : request W.spec =
  {
    W.op = 8;
    name = "munmap";
    takes_vfd = true;
    batchable = false;
    fields = [ fu63 "gva" 16; fu63 "len" 24 ];
    vchecks =
      [
        vfd_ok;
        W.Vrange
          { field = "len"; min = 1; max = W.Max_mmap; detail = "munmap length out of range" };
        W.Vwrap { base = "gva"; len = "len"; detail = "range wraps" };
      ];
    build =
      (fun ~vfd -> function
        | [ W.I gva; W.I len ] -> Rmunmap { vfd; gva; len } | _ -> assert false);
    parts =
      (function
      | Rmunmap { vfd; gva; len } -> (vfd, [ W.I gva; W.I len ]) | _ -> assert false);
  }

let poll_spec : request W.spec =
  {
    W.op = 9;
    name = "poll";
    takes_vfd = true;
    batchable = true;
    fields =
      [
        fflag "want_in" 16;
        fflag "want_out" 20;
        { W.fname = "timeout"; off = 24; kind = W.Timeout { reject = "poll timeout" } };
      ];
    vchecks = [ vfd_ok; W.Vtimeout { field = "timeout"; detail = "non-finite" } ];
    build =
      (fun ~vfd -> function
        | [ W.B want_in; W.B want_out; W.F timeout_us ] ->
            Rpoll { vfd; want_in; want_out; timeout_us }
        | _ -> assert false);
    parts =
      (function
      | Rpoll { vfd; want_in; want_out; timeout_us } ->
          (vfd, [ W.B want_in; W.B want_out; W.F timeout_us ])
      | _ -> assert false);
  }

let fasync_spec : request W.spec =
  {
    W.op = 10;
    name = "fasync";
    takes_vfd = true;
    batchable = true;
    fields = [ fflag "on" 16 ];
    vchecks = [ vfd_ok ];
    build = (fun ~vfd -> function [ W.B on ] -> Rfasync { vfd; on } | _ -> assert false);
    parts = (function Rfasync { vfd; on } -> (vfd, [ W.B on ]) | _ -> assert false);
  }

let noop_spec : request W.spec =
  {
    W.op = 11;
    name = "noop";
    takes_vfd = false;
    batchable = true;
    fields = [];
    vchecks = [];
    build = (fun ~vfd:_ _ -> Rnoop);
    parts = (function Rnoop -> (0, []) | _ -> assert false);
  }

let req_specs =
  [
    open_spec; release_spec; read_spec; write_spec; ioctl_spec; mmap_spec;
    fault_spec; munmap_spec; poll_spec; fasync_spec; noop_spec;
  ]

(* [Rbatch] is the one structural (recursive) form; it has no field
   spec of its own — count @12, then length-prefixed records of
   batchable specs — and is handled by the shims below. *)
let batch_op = 12

let spec_of_req = function
  | Ropen _ -> open_spec
  | Rrelease _ -> release_spec
  | Rread _ -> read_spec
  | Rwrite _ -> write_spec
  | Rioctl _ -> ioctl_spec
  | Rmmap _ -> mmap_spec
  | Rfault _ -> fault_spec
  | Rmunmap _ -> munmap_spec
  | Rpoll _ -> poll_spec
  | Rfasync _ -> fasync_spec
  | Rnoop -> noop_spec
  | Rbatch _ -> invalid_arg "Proto.spec_of_req: batch has no singleton spec"

let find_req_spec op = List.find_opt (fun s -> s.W.op = op) req_specs

let find_batchable tag =
  List.find_opt (fun s -> s.W.batchable && s.W.op = tag) req_specs

(* ---- derived encoding ---- *)

(* One length-prefixed sub-op record: [u32 record len][u32 tag =
   opcode][u32 vfd][op payload].  Returns the offset just past the
   record.  Only the small fixed-size data-path operations are
   batchable. *)
let encode_subop b off req =
  match req with
  | Rbatch _ -> invalid_arg "Proto.encode_subop: operation not batchable"
  | _ ->
      let s = spec_of_req req in
      if not s.W.batchable then
        invalid_arg "Proto.encode_subop: operation not batchable";
      let vfd, _ = s.W.parts req in
      let len = 12 + W.payload_span ~payload_base:16 s in
      if off + len > trace_off then raise Batch_overflow;
      w32 b off len;
      w32 b (off + 4) s.W.op;
      w32 b (off + 8) vfd;
      (* record payload fields sit at their singleton offsets shifted
         onto the record body (singleton payload base 16 -> off + 12) *)
      W.encode_fields s b ~base:(off + 12 - 16) req;
      off + len

let encode_request ~grant_ref ~pid req =
  let b = Bytes.make slot_size '\000' in
  w32 b 4 grant_ref;
  w32 b pid_off pid;
  (match req with
  | Rbatch reqs ->
      let n = List.length reqs in
      if n < 1 || n > max_batch_ops then
        invalid_arg "Proto.encode_request: batch size out of range";
      w32 b 0 batch_op;
      w32 b 12 n;
      let off = ref 16 in
      List.iter (fun sub -> off := encode_subop b !off sub) reqs
  | _ ->
      let s = spec_of_req req in
      let vfd, _ = s.W.parts req in
      w32 b 0 s.W.op;
      w32 b 8 vfd;
      W.encode_fields s b ~base:0 req);
  b

(* ---- derived decoding ---- *)

let reject label msg =
  W.Coverage.hit ("reject." ^ label);
  raise (Malformed msg)

let decode_subop b off =
  if off + 12 > trace_off then reject "batch.header" "batch record header";
  let len = r32 b off in
  if len < 12 || off + len > trace_off then
    reject "batch.length" "batch record length";
  let tag = r32 b (off + 4) in
  let vfd = r32 b (off + 8) in
  match find_batchable tag with
  | None -> reject "batch.tag" (Printf.sprintf "batch sub-op tag %d" tag)
  | Some s ->
      if len < 12 + W.payload_span ~payload_base:16 s then
        reject "batch.payload" "batch record payload";
      W.Coverage.hit ("decode.sub." ^ s.W.name);
      (W.decode_fields s b ~base:(off + 12 - 16) ~msg_prefix:"batch " ~vfd, off + len)

let decode_request b =
  let opcode = r32 b 0 in
  let grant_ref = r32 b 4 in
  let vfd = r32 b 8 in
  let pid = r32 b pid_off in
  let req =
    if opcode = batch_op then begin
      let count = r32 b 12 in
      if count < 1 || count > max_batch_ops then reject "batch.count" "batch count";
      W.Coverage.hit "decode.req.batch";
      let rec go off i acc =
        if i = count then List.rev acc
        else
          let sub, off = decode_subop b off in
          go off (i + 1) (sub :: acc)
      in
      Rbatch (go 16 0 [])
    end
    else
      match find_req_spec opcode with
      | None -> reject "opcode" (Printf.sprintf "opcode %d" opcode)
      | Some s ->
          W.Coverage.hit ("decode.req." ^ s.W.name);
          W.decode_fields s b ~base:0 ~msg_prefix:"" ~vfd
  in
  (req, grant_ref, pid)

(* ---- derived request sanitization (§4, §7.1: the backend does not
   trust the frontend) ----

   A decoded request is only well-formed bytes; nothing guarantees its
   fields are sane.  The sanitizer runs each spec's [vchecks] in
   declaration order after decode and before dispatch, returning
   either a (possibly clamped) request or the field that failed.  Wire
   signedness is settled by the spec table's read policies: [U32]
   fields can never be negative, and a hostile top-bit-set u64 read
   through a [U63] policy surfaces as a negative int and is caught by
   the derived [>= min] range checks. *)

let validate_limits ~(limits : W.limits) ((req : request), grant_ref, pid) :
    (request, violation) result =
  if grant_ref < 0 || grant_ref >= limits.W.grant_capacity then begin
    W.Coverage.hit "sanitize.grant_ref";
    Error { field = "grant_ref"; detail = "outside grant table" }
  end
  else if pid < 0 then begin
    W.Coverage.hit "sanitize.pid";
    Error { field = "pid"; detail = "negative" }
  end
  else
    match req with
    | Rbatch reqs ->
        (* every sub-op passes through the same gate as a singleton;
           the first offending sub-op fails the whole batch, named by
           its index *)
        let n = List.length reqs in
        if n < 1 || n > max_batch_ops then begin
          W.Coverage.hit "sanitize.batch.count";
          Error { field = "batch"; detail = "count out of range" }
        end
        else
          let rec go i acc = function
            | [] -> Ok (Rbatch (List.rev acc))
            | sub :: rest -> (
                match sub with
                | Ropen _ | Rmmap _ | Rfault _ | Rmunmap _ | Rbatch _ ->
                    W.Coverage.hit "sanitize.batch.not_batchable";
                    Error
                      {
                        field = Printf.sprintf "batch[%d]" i;
                        detail = "operation not batchable";
                      }
                | _ -> (
                    match
                      W.validate (spec_of_req sub) limits
                        ~prefix:(Printf.sprintf "batch[%d]." i) sub
                    with
                    | Ok sub -> go (i + 1) (sub :: acc) rest
                    | Error e -> Error e))
          in
          go 0 [] reqs
    | _ -> W.validate (spec_of_req req) limits ~prefix:"" req

let validate ~max_transfer_bytes ~poll_timeout_cap_us ~grant_capacity decoded =
  validate_limits
    ~limits:{ W.max_transfer_bytes; poll_timeout_cap_us; grant_capacity }
    decoded

(* ---- responses ---- *)

let ok_spec : response W.spec =
  {
    W.op = 1;
    name = "ok";
    takes_vfd = false;
    batchable = true;
    fields = [ fu63 "value" 8 ];
    vchecks = [];
    build = (fun ~vfd:_ -> function [ W.I v ] -> Rok v | _ -> assert false);
    parts = (function Rok v -> (0, [ W.I v ]) | _ -> assert false);
  }

let err_spec : response W.spec =
  {
    W.op = 2;
    name = "err";
    takes_vfd = false;
    batchable = true;
    fields = [ { W.fname = "code"; off = 8; kind = W.Int W.U32 } ];
    vchecks = [];
    build = (fun ~vfd:_ -> function [ W.I code ] -> Rerr code | _ -> assert false);
    parts = (function Rerr code -> (0, [ W.I code ]) | _ -> assert false);
  }

let poll_reply_spec : response W.spec =
  {
    W.op = 3;
    name = "poll_reply";
    takes_vfd = false;
    batchable = true;
    fields = [ fflag "pollin" 8; fflag "pollout" 12 ];
    vchecks = [];
    build =
      (fun ~vfd:_ -> function
        | [ W.B pollin; W.B pollout ] -> Rpoll_reply { pollin; pollout }
        | _ -> assert false);
    parts =
      (function
      | Rpoll_reply { pollin; pollout } -> (0, [ W.B pollin; W.B pollout ])
      | _ -> assert false);
  }

let resp_specs = [ ok_spec; err_spec; poll_reply_spec ]
let batch_reply_op = 4

let spec_of_resp = function
  | Rok _ -> ok_spec
  | Rerr _ -> err_spec
  | Rpoll_reply _ -> poll_reply_spec
  | Rbatch_reply _ -> invalid_arg "Proto.spec_of_resp: batch reply has no spec"

let find_resp_spec tag = List.find_opt (fun s -> s.W.op = tag) resp_specs

(* one length-prefixed sub-response record: [u32 len][u32 tag][payload] *)
let encode_subresp b off sub =
  match sub with
  | Rbatch_reply _ -> invalid_arg "Proto.encode_response: nested batch reply"
  | _ ->
      let s = spec_of_resp sub in
      let len = 8 + W.payload_span ~payload_base:8 s in
      if off + len > trace_off then raise Batch_overflow;
      w32 b off len;
      w32 b (off + 4) s.W.op;
      (* payload fields at singleton offsets shifted onto the record
         (singleton payload base 8 -> off + 8), i.e. base = off *)
      W.encode_fields s b ~base:off sub;
      off + len

let encode_response resp =
  let b = Bytes.make slot_size '\000' in
  (match resp with
  | Rbatch_reply subs ->
      let n = List.length subs in
      if n < 1 || n > max_batch_ops then
        invalid_arg "Proto.encode_response: batch size out of range";
      w32 b 0 batch_reply_op;
      w32 b 8 n;
      let off = ref 16 in
      List.iter (fun sub -> off := encode_subresp b !off sub) subs
  | _ ->
      let s = spec_of_resp resp in
      w32 b 0 s.W.op;
      W.encode_fields s b ~base:0 resp);
  b

let decode_subresp b off =
  if off + 8 > trace_off then reject "batch_reply.header" "batch reply header";
  let len = r32 b off in
  if len < 8 || off + len > trace_off then
    reject "batch_reply.length" "batch reply length";
  let tag = r32 b (off + 4) in
  match find_resp_spec tag with
  | None -> reject "batch_reply.tag" (Printf.sprintf "batch reply tag %d" tag)
  | Some s ->
      if len < 8 + W.payload_span ~payload_base:8 s then
        reject "batch_reply.payload" "batch reply payload";
      W.Coverage.hit ("decode.subresp." ^ s.W.name);
      (W.decode_fields s b ~base:off ~msg_prefix:"" ~vfd:0, off + len)

let decode_response b =
  let tag = r32 b 0 in
  if tag = batch_reply_op then begin
    let count = r32 b 8 in
    if count < 1 || count > max_batch_ops then
      reject "batch_reply.count" "batch reply count";
    W.Coverage.hit "decode.resp.batch_reply";
    let rec go off i acc =
      if i = count then List.rev acc
      else
        let sub, off = decode_subresp b off in
        go off (i + 1) (sub :: acc)
    in
    Rbatch_reply (go 16 0 [])
  end
  else
    match find_resp_spec tag with
    | None -> reject "response_tag" (Printf.sprintf "response tag %d" tag)
    | Some s ->
        W.Coverage.hit ("decode.resp." ^ s.W.name);
        W.decode_fields s b ~base:0 ~msg_prefix:"" ~vfd:0

(* ---- derived fuzzing: valid skeletons, one field driven hostile ---- *)

module Fuzz = struct
  (* Generation-time limits only shape valid skeletons (field
     magnitudes); they need not match the serving config exactly. *)
  let default_limits =
    {
      W.max_transfer_bytes = 1 lsl 20;
      poll_timeout_cap_us = 1e6;
      grant_capacity = 4096;
    }

  let generate ?(limits = default_limits) rng =
    let n = List.length req_specs in
    let pick = Sim.Rng.int rng (n + 3) in
    if pick < n then W.generate (List.nth req_specs pick) limits rng
    else
      (* multi-op descriptors get extra weight: their record grammar
         (count, per-record length, tag) is where structure-aware
         mutation pays off *)
      let batchables = List.filter (fun s -> s.W.batchable) req_specs in
      let count = 1 + Sim.Rng.int rng max_batch_ops in
      Rbatch
        (List.init count (fun _ ->
             W.generate
               (List.nth batchables (Sim.Rng.int rng (List.length batchables)))
               limits rng))

  (* Walk a batch descriptor's record table, as far as it stays
     well-formed, so mutations can target interior records. *)
  let batch_records b =
    let count = min (r32 b 12) max_batch_ops in
    let rec go off i acc =
      if i >= count || off + 12 > trace_off then List.rev acc
      else
        let len = r32 b off in
        if len < 12 || off + len > trace_off then List.rev acc
        else go (off + len) (i + 1) ((off, r32 b (off + 4)) :: acc)
    in
    go 16 0 []

  let mutate rng b =
    let opcode = r32 b 0 in
    let header_attack () =
      match Sim.Rng.int rng 4 with
      | 0 -> w32 b 0 (Sim.Rng.int rng 40) (* opcode *)
      | 1 -> w32 b 4 (0xffffffff - Sim.Rng.int rng 4096) (* grant_ref *)
      | 2 -> w32 b 8 (max_vfd + 1 + Sim.Rng.int rng 4096) (* vfd *)
      | _ -> w32 b pid_off 0xffffffff (* pid *)
    in
    if Sim.Rng.int rng 4 = 0 then header_attack ()
    else if opcode = batch_op then begin
      match (Sim.Rng.int rng 4, batch_records b) with
      | 0, _ | _, [] ->
          (* batch count attack *)
          w32 b 12
            (match Sim.Rng.int rng 4 with
            | 0 -> 0
            | 1 -> max_batch_ops + 1
            | 2 -> 0xffffffff
            | _ -> Sim.Rng.int rng 256)
      | 1, records ->
          (* record length attack *)
          let off, _ = List.nth records (Sim.Rng.int rng (List.length records)) in
          w32 b off
            (match Sim.Rng.int rng 4 with
            | 0 -> 0
            | 1 -> 7
            | 2 -> trace_off
            | _ -> 13 (* valid header, truncated payload *))
      | 2, records ->
          (* tag attack *)
          let off, _ = List.nth records (Sim.Rng.int rng (List.length records)) in
          w32 b (off + 4)
            (match Sim.Rng.int rng 4 with
            | 0 -> 0
            | 1 -> 1 (* open: un-batchable tag *)
            | 2 -> batch_op (* nesting attempt *)
            | _ -> 99)
      | _, records -> (
          (* drive one record field hostile under its own spec *)
          let off, tag = List.nth records (Sim.Rng.int rng (List.length records)) in
          match find_batchable tag with
          | Some s when s.W.fields <> [] ->
              let f = List.nth s.W.fields (Sim.Rng.int rng (List.length s.W.fields)) in
              W.hostile_field rng b ~base:(off + 12 - 16) f
          | _ -> w32 b (off + 8) (max_vfd + 1) (* record vfd attack *))
    end
    else
      match find_req_spec opcode with
      | Some s when s.W.fields <> [] ->
          let f = List.nth s.W.fields (Sim.Rng.int rng (List.length s.W.fields)) in
          W.hostile_field rng b ~base:0 f
      | _ -> header_attack ()

  let descriptor ?limits rng ~grant_ref ~pid =
    let b = encode_request ~grant_ref ~pid (generate ?limits rng) in
    (* 1-in-8 descriptors stay valid skeletons, so the campaign also
       exercises the accept paths *)
    if Sim.Rng.int rng 8 > 0 then mutate rng b;
    b
end

(* ---- metadata shims ---- *)

let op_kind_of_request = function
  | Ropen _ -> Oskit.Os_flavor.Open
  | Rrelease _ -> Oskit.Os_flavor.Release
  | Rread _ -> Oskit.Os_flavor.Read
  | Rwrite _ -> Oskit.Os_flavor.Write
  | Rioctl _ -> Oskit.Os_flavor.Ioctl
  | Rmmap _ -> Oskit.Os_flavor.Mmap
  | Rfault _ -> Oskit.Os_flavor.Fault
  | Rmunmap _ -> Oskit.Os_flavor.Mmap
  | Rpoll _ -> Oskit.Os_flavor.Poll
  | Rfasync _ -> Oskit.Os_flavor.Fasync
  | Rnoop -> Oskit.Os_flavor.Ioctl
  | Rbatch _ -> Oskit.Os_flavor.Ioctl

let request_name = function
  | Rbatch reqs -> Printf.sprintf "batch(%d)" (List.length reqs)
  | req -> (spec_of_req req).W.name
