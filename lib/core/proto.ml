(** CVD wire protocol.

    File operations and their results are serialised into the shared
    page (§5.1: "the frontend puts the file operation arguments in a
    shared page").  Fixed little-endian encoding; one request and one
    response slot per channel. *)

type request =
  | Ropen of { path : string }
  | Rrelease of { vfd : int }
  | Rread of { vfd : int; buf : int; len : int }
  | Rwrite of { vfd : int; buf : int; len : int }
  | Rioctl of { vfd : int; cmd : int; arg : int64 }
  | Rmmap of { vfd : int; gva : int; len : int; pgoff : int }
  | Rfault of { vfd : int; gva : int }
  | Rmunmap of { vfd : int; gva : int; len : int }
  | Rpoll of { vfd : int; want_in : bool; want_out : bool; timeout_us : float }
  | Rfasync of { vfd : int; on : bool }
  | Rnoop (* the §6.1.1 latency microbenchmark *)
  | Rbatch of request list
      (* io_uring-style multi-op descriptor: one ring slot / one
         doorbell carries a length-prefixed batch of small file ops
         (evdev reads, PCM periods, netmap syncs).  Only fixed-size
         data-path operations may ride in a batch — memory-layout ops
         (open/mmap/fault/munmap) stay singletons — and batches do not
         nest. *)

type response =
  | Rok of int
  | Rerr of int (* positive errno code *)
  | Rpoll_reply of { pollin : bool; pollout : bool }
  | Rbatch_reply of response list
      (* one sub-response per sub-op, in submission order *)

let slot_size = 1024

(* Batch geometry: the multi-op payload must stay below the trace word
   at 1004, and each sub-op record is at most 28 bytes, so 32 sub-ops
   fit with headroom. *)
let max_batch_ops = 32

(* ---- encoding ---- *)

let w32 b off v = Bytes.set_int32_le b off (Int32.of_int v)
let w64 b off v = Bytes.set_int64_le b off (Int64.of_int v)
let r32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xffffffff
let r64 b off = Int64.to_int (Bytes.get_int64_le b off)

(* header: opcode @0, grant @4, vfd @8, transport sequence number
   @1008, issuing pid @1012 (the hypervisor resolves the guest
   process's page table from it) *)
let pid_off = 1012

(* The per-request sequence number lives in the descriptor itself, so
   a response carries back exactly which attempt it answers: under
   at-least-once retries a late response to a timed-out attempt must
   not be mistaken for the resend's answer.  The channel stamps it at
   publish time (it is transport state, not operation state). *)
let seq_off = 1008

let set_seq b seq = w32 b seq_off seq
let get_seq b = r32 b seq_off

(* The operation's trace id (Obs tracing), minted by the frontend and
   stamped next to the sequence number so every stage of the pipeline
   — transport, backend, hypervisor — can attribute its spans to the
   forwarded operation it serves.  0 = untraced. *)
let trace_off = 1004

let set_trace b id = w32 b trace_off id
let get_trace b = r32 b trace_off

exception Batch_overflow

(* One length-prefixed sub-op record: [u32 record len][u32 tag =
   opcode][u32 vfd][op payload].  Returns the offset just past the
   record.  Only the small fixed-size data-path operations are
   batchable. *)
let encode_subop b off req =
  let record tag vfd payload_len fill =
    let len = 12 + payload_len in
    if off + len > trace_off then raise Batch_overflow;
    w32 b off len;
    w32 b (off + 4) tag;
    w32 b (off + 8) vfd;
    fill (off + 12);
    off + len
  in
  match req with
  | Rrelease { vfd } -> record 2 vfd 0 (fun _ -> ())
  | Rread { vfd; buf; len } ->
      record 3 vfd 16 (fun p ->
          w64 b p buf;
          w64 b (p + 8) len)
  | Rwrite { vfd; buf; len } ->
      record 4 vfd 16 (fun p ->
          w64 b p buf;
          w64 b (p + 8) len)
  | Rioctl { vfd; cmd; arg } ->
      record 5 vfd 16 (fun p ->
          w64 b p cmd;
          Bytes.set_int64_le b (p + 8) arg)
  | Rpoll { vfd; want_in; want_out; timeout_us } ->
      record 9 vfd 16 (fun p ->
          w32 b p (if want_in then 1 else 0);
          w32 b (p + 4) (if want_out then 1 else 0);
          Bytes.set_int64_le b (p + 8) (Int64.bits_of_float timeout_us))
  | Rfasync { vfd; on } -> record 10 vfd 4 (fun p -> w32 b p (if on then 1 else 0))
  | Rnoop -> record 11 0 0 (fun _ -> ())
  | Ropen _ | Rmmap _ | Rfault _ | Rmunmap _ | Rbatch _ ->
      invalid_arg "Proto.encode_subop: operation not batchable"

let encode_request ~grant_ref ~pid req =
  let b = Bytes.make slot_size '\000' in
  let vfd_of = function
    | Ropen _ | Rnoop | Rbatch _ -> 0
    | Rrelease { vfd } | Rread { vfd; _ } | Rwrite { vfd; _ } | Rioctl { vfd; _ }
    | Rmmap { vfd; _ } | Rfault { vfd; _ } | Rmunmap { vfd; _ } | Rpoll { vfd; _ }
    | Rfasync { vfd; _ } ->
        vfd
  in
  w32 b 4 grant_ref;
  w32 b 8 (vfd_of req);
  w32 b pid_off pid;
  (match req with
  | Ropen { path } ->
      w32 b 0 1;
      w32 b 12 (String.length path);
      Bytes.blit_string path 0 b 16 (String.length path)
  | Rrelease _ -> w32 b 0 2
  | Rread { buf; len; _ } ->
      w32 b 0 3;
      w64 b 16 buf;
      w64 b 24 len
  | Rwrite { buf; len; _ } ->
      w32 b 0 4;
      w64 b 16 buf;
      w64 b 24 len
  | Rioctl { cmd; arg; _ } ->
      w32 b 0 5;
      w64 b 16 cmd;
      Bytes.set_int64_le b 24 arg
  | Rmmap { gva; len; pgoff; _ } ->
      w32 b 0 6;
      w64 b 16 gva;
      w64 b 24 len;
      w64 b 32 pgoff
  | Rfault { gva; _ } ->
      w32 b 0 7;
      w64 b 16 gva
  | Rmunmap { gva; len; _ } ->
      w32 b 0 8;
      w64 b 16 gva;
      w64 b 24 len
  | Rpoll { want_in; want_out; timeout_us; _ } ->
      w32 b 0 9;
      w32 b 16 (if want_in then 1 else 0);
      w32 b 20 (if want_out then 1 else 0);
      Bytes.set_int64_le b 24 (Int64.bits_of_float timeout_us)
  | Rfasync { on; _ } ->
      w32 b 0 10;
      w32 b 16 (if on then 1 else 0)
  | Rnoop -> w32 b 0 11
  | Rbatch reqs ->
      let n = List.length reqs in
      if n < 1 || n > max_batch_ops then
        invalid_arg "Proto.encode_request: batch size out of range";
      w32 b 0 12;
      w32 b 12 n;
      let off = ref 16 in
      List.iter (fun sub -> off := encode_subop b !off sub) reqs);
  b

exception Malformed of string

let decode_request b =
  let opcode = r32 b 0 in
  let grant_ref = r32 b 4 in
  let vfd = r32 b 8 in
  let pid = r32 b pid_off in
  let req =
    match opcode with
    | 1 ->
        let len = r32 b 12 in
        if len < 0 || len > 256 then raise (Malformed "path length");
        Ropen { path = Bytes.sub_string b 16 len }
    | 2 -> Rrelease { vfd }
    | 3 -> Rread { vfd; buf = r64 b 16; len = r64 b 24 }
    | 4 -> Rwrite { vfd; buf = r64 b 16; len = r64 b 24 }
    | 5 -> Rioctl { vfd; cmd = r64 b 16; arg = Bytes.get_int64_le b 24 }
    | 6 -> Rmmap { vfd; gva = r64 b 16; len = r64 b 24; pgoff = r64 b 32 }
    | 7 -> Rfault { vfd; gva = r64 b 16 }
    | 8 -> Rmunmap { vfd; gva = r64 b 16; len = r64 b 24 }
    | 9 ->
        (* The timeout travels as raw float bits, so a hostile guest
           can encode NaN, negatives or infinities — any of which would
           corrupt the backend's deadline_left arithmetic (NaN poisons
           every comparison).  Reject them at decode. *)
        let timeout_us = Int64.float_of_bits (Bytes.get_int64_le b 24) in
        if Float.is_nan timeout_us || timeout_us < 0. || timeout_us = infinity
        then raise (Malformed "poll timeout");
        Rpoll { vfd; want_in = r32 b 16 <> 0; want_out = r32 b 20 <> 0; timeout_us }
    | 10 -> Rfasync { vfd; on = r32 b 16 <> 0 }
    | 11 -> Rnoop
    | 12 ->
        let count = r32 b 12 in
        if count < 1 || count > max_batch_ops then
          raise (Malformed "batch count");
        let decode_subop off =
          if off + 12 > trace_off then raise (Malformed "batch record header");
          let len = r32 b off in
          if len < 12 || off + len > trace_off then
            raise (Malformed "batch record length");
          let tag = r32 b (off + 4) in
          let vfd = r32 b (off + 8) in
          let payload p need =
            if len < 12 + need then raise (Malformed "batch record payload");
            p
          in
          let sub =
            match tag with
            | 2 -> Rrelease { vfd }
            | 3 ->
                let p = payload (off + 12) 16 in
                Rread { vfd; buf = r64 b p; len = r64 b (p + 8) }
            | 4 ->
                let p = payload (off + 12) 16 in
                Rwrite { vfd; buf = r64 b p; len = r64 b (p + 8) }
            | 5 ->
                let p = payload (off + 12) 16 in
                Rioctl { vfd; cmd = r64 b p; arg = Bytes.get_int64_le b (p + 8) }
            | 9 ->
                let p = payload (off + 12) 16 in
                let timeout_us =
                  Int64.float_of_bits (Bytes.get_int64_le b (p + 8))
                in
                if
                  Float.is_nan timeout_us || timeout_us < 0.
                  || timeout_us = infinity
                then raise (Malformed "batch poll timeout");
                Rpoll
                  {
                    vfd;
                    want_in = r32 b p <> 0;
                    want_out = r32 b (p + 4) <> 0;
                    timeout_us;
                  }
            | 10 ->
                let p = payload (off + 12) 4 in
                Rfasync { vfd; on = r32 b p <> 0 }
            | 11 -> Rnoop
            | n -> raise (Malformed (Printf.sprintf "batch sub-op tag %d" n))
          in
          (sub, off + len)
        in
        let rec go off i acc =
          if i = count then List.rev acc
          else
            let sub, off = decode_subop off in
            go off (i + 1) (sub :: acc)
        in
        Rbatch (go 16 0 [])
    | n -> raise (Malformed (Printf.sprintf "opcode %d" n))
  in
  (req, grant_ref, pid)

(* ---- request sanitization (§4, §7.1: the backend does not trust the
   frontend) ----

   A decoded request is only well-formed bytes; nothing guarantees its
   fields are sane.  [validate] enforces bounds on every field after
   decode and before dispatch, returning either a (possibly clamped)
   request or the field that failed.  Range checks use the host's
   [int] semantics: the wire u64s are read through [Int64.to_int], so
   a huge unsigned value surfaces here as a negative [int] and is
   caught by the [>= 0] checks. *)

type violation = { field : string; detail : string }

let violation field detail = Error { field; detail }

(* Device mmaps legitimately exceed the copy-transfer cap (a GPU BO or
   a netmap ring can be tens of MiB), but must still be bounded. *)
let max_mmap_bytes = 1 lsl 30

let max_vfd = 1 lsl 20

let valid_path path =
  let n = String.length path in
  let has_dotdot = ref false in
  for i = 0 to n - 2 do
    if path.[i] = '.' && path.[i + 1] = '.' then has_dotdot := true
  done;
  n > 5 && n <= 256
  && String.sub path 0 5 = "/dev/"
  && (not (String.contains path '\000'))
  && not !has_dotdot

let check_vfd vfd k =
  if vfd < 0 || vfd > max_vfd then violation "vfd" "out of range" else k ()

let rec validate ~max_transfer_bytes ~poll_timeout_cap_us ~grant_capacity
    ((req : request), grant_ref, pid) : (request, violation) result =
  if grant_ref < 0 || grant_ref >= grant_capacity then
    violation "grant_ref" "outside grant table"
  else if pid < 0 then violation "pid" "negative"
  else
    match req with
    | Rnoop -> Ok req
    | Ropen { path } ->
        if valid_path path then Ok req
        else violation "path" "not a devfs path (or NUL / dot-dot)"
    | Rrelease { vfd } -> check_vfd vfd (fun () -> Ok req)
    | Rread { vfd; buf; len } | Rwrite { vfd; buf; len } ->
        check_vfd vfd (fun () ->
            if len < 0 || len > max_transfer_bytes then
              violation "len" "transfer larger than max_transfer_bytes"
            else if buf < 0 then violation "buf" "negative user address"
            else Ok req)
    | Rioctl { vfd; cmd; _ } ->
        check_vfd vfd (fun () ->
            if cmd < 0 || cmd > 0xffff_ffff then
              violation "cmd" "not a u32 ioctl number"
            else Ok req)
    | Rmmap { vfd; gva; len; pgoff } ->
        check_vfd vfd (fun () ->
            if len <= 0 || len > max_mmap_bytes then
              violation "len" "mmap length out of range"
            else if gva < 0 || gva > max_int - len then
              violation "gva" "range wraps"
            else if pgoff < 0 then violation "pgoff" "negative"
            else Ok req)
    | Rfault { vfd; gva } ->
        check_vfd vfd (fun () ->
            if gva < 0 then violation "gva" "negative" else Ok req)
    | Rmunmap { vfd; gva; len } ->
        check_vfd vfd (fun () ->
            if len <= 0 || len > max_mmap_bytes then
              violation "len" "munmap length out of range"
            else if gva < 0 || gva > max_int - len then
              violation "gva" "range wraps"
            else Ok req)
    | Rpoll ({ vfd; timeout_us; _ } as p) ->
        check_vfd vfd (fun () ->
            (* decode already rejected NaN/negative/infinite; clamp
               merely-huge timeouts into the configured cap *)
            if Float.is_nan timeout_us || timeout_us < 0. then
              violation "timeout" "non-finite"
            else if timeout_us > poll_timeout_cap_us then
              Ok (Rpoll { p with timeout_us = poll_timeout_cap_us })
            else Ok req)
    | Rfasync { vfd; _ } -> check_vfd vfd (fun () -> Ok req)
    | Rbatch reqs ->
        (* every sub-op passes through the same gate as a singleton
           (with the batch's grant_ref and pid); the first offending
           sub-op fails the whole batch, named by its index *)
        let n = List.length reqs in
        if n < 1 || n > max_batch_ops then
          violation "batch" "count out of range"
        else
          let rec go i acc = function
            | [] -> Ok (Rbatch (List.rev acc))
            | sub :: rest -> (
                match sub with
                | Ropen _ | Rmmap _ | Rfault _ | Rmunmap _ | Rbatch _ ->
                    violation
                      (Printf.sprintf "batch[%d]" i)
                      "operation not batchable"
                | _ -> (
                    match
                      validate ~max_transfer_bytes ~poll_timeout_cap_us
                        ~grant_capacity (sub, grant_ref, pid)
                    with
                    | Ok sub -> go (i + 1) (sub :: acc) rest
                    | Error { field; detail } ->
                        Error
                          {
                            field = Printf.sprintf "batch[%d].%s" i field;
                            detail;
                          }))
          in
          go 0 [] reqs

let encode_response resp =
  let b = Bytes.make slot_size '\000' in
  (* one length-prefixed sub-response record: [u32 len][u32 tag][payload] *)
  let encode_subresp off sub =
    let record tag payload_len fill =
      let len = 8 + payload_len in
      if off + len > trace_off then raise Batch_overflow;
      w32 b off len;
      w32 b (off + 4) tag;
      fill (off + 8);
      off + len
    in
    match sub with
    | Rok v -> record 1 8 (fun p -> w64 b p v)
    | Rerr code -> record 2 4 (fun p -> w32 b p code)
    | Rpoll_reply { pollin; pollout } ->
        record 3 8 (fun p ->
            w32 b p (if pollin then 1 else 0);
            w32 b (p + 4) (if pollout then 1 else 0))
    | Rbatch_reply _ -> invalid_arg "Proto.encode_response: nested batch reply"
  in
  (match resp with
  | Rok v ->
      w32 b 0 1;
      w64 b 8 v
  | Rerr code ->
      w32 b 0 2;
      w32 b 8 code
  | Rpoll_reply { pollin; pollout } ->
      w32 b 0 3;
      w32 b 8 (if pollin then 1 else 0);
      w32 b 12 (if pollout then 1 else 0)
  | Rbatch_reply subs ->
      let n = List.length subs in
      if n < 1 || n > max_batch_ops then
        invalid_arg "Proto.encode_response: batch size out of range";
      w32 b 0 4;
      w32 b 8 n;
      let off = ref 16 in
      List.iter (fun sub -> off := encode_subresp !off sub) subs);
  b

let decode_response b =
  match r32 b 0 with
  | 1 -> Rok (r64 b 8)
  | 2 -> Rerr (r32 b 8)
  | 3 -> Rpoll_reply { pollin = r32 b 8 <> 0; pollout = r32 b 12 <> 0 }
  | 4 ->
      let count = r32 b 8 in
      if count < 1 || count > max_batch_ops then
        raise (Malformed "batch reply count");
      let decode_subresp off =
        if off + 8 > trace_off then raise (Malformed "batch reply header");
        let len = r32 b off in
        if len < 8 || off + len > trace_off then
          raise (Malformed "batch reply length");
        let sub =
          match r32 b (off + 4) with
          | 1 ->
              if len < 16 then raise (Malformed "batch reply payload");
              Rok (r64 b (off + 8))
          | 2 ->
              if len < 12 then raise (Malformed "batch reply payload");
              Rerr (r32 b (off + 8))
          | 3 ->
              if len < 16 then raise (Malformed "batch reply payload");
              Rpoll_reply
                {
                  pollin = r32 b (off + 8) <> 0;
                  pollout = r32 b (off + 12) <> 0;
                }
          | n -> raise (Malformed (Printf.sprintf "batch reply tag %d" n))
        in
        (sub, off + len)
      in
      let rec go off i acc =
        if i = count then List.rev acc
        else
          let sub, off = decode_subresp off in
          go off (i + 1) (sub :: acc)
      in
      Rbatch_reply (go 16 0 [])
  | n -> raise (Malformed (Printf.sprintf "response tag %d" n))

let op_kind_of_request = function
  | Ropen _ -> Oskit.Os_flavor.Open
  | Rrelease _ -> Oskit.Os_flavor.Release
  | Rread _ -> Oskit.Os_flavor.Read
  | Rwrite _ -> Oskit.Os_flavor.Write
  | Rioctl _ -> Oskit.Os_flavor.Ioctl
  | Rmmap _ -> Oskit.Os_flavor.Mmap
  | Rfault _ -> Oskit.Os_flavor.Fault
  | Rmunmap _ -> Oskit.Os_flavor.Mmap
  | Rpoll _ -> Oskit.Os_flavor.Poll
  | Rfasync _ -> Oskit.Os_flavor.Fasync
  | Rnoop -> Oskit.Os_flavor.Ioctl
  | Rbatch _ -> Oskit.Os_flavor.Ioctl

let request_name = function
  | Ropen _ -> "open"
  | Rrelease _ -> "release"
  | Rread _ -> "read"
  | Rwrite _ -> "write"
  | Rioctl _ -> "ioctl"
  | Rmmap _ -> "mmap"
  | Rfault _ -> "fault"
  | Rmunmap _ -> "munmap"
  | Rpoll _ -> "poll"
  | Rfasync _ -> "fasync"
  | Rnoop -> "noop"
  | Rbatch reqs -> Printf.sprintf "batch(%d)" (List.length reqs)
