(** A pool of CVD channels for one guest.

    The backend runs one worker per channel, giving each guest a few
    parallel servers (the paper's per-guest wait queue drained by
    backend threads, §5.1): a process blocked in a long read or poll
    does not stall the guest's other device files.  Each channel is a
    descriptor ring, so the pool no longer hands out exclusive
    channels — it routes each operation to the least-loaded ring and
    lets the ring's own slot accounting apply backpressure.  The
    per-guest operation cap (default 100) still bounds how many
    operations may be outstanding or waiting — the DoS protection of
    §5.1. *)

type t = {
  channels : Channel.t array;
  cap : int;
  rng : Sim.Rng.t option; (* Some -> power-of-two-choices dispatch *)
  mutable pending : int; (* in flight + waiting for a ring slot *)
  mutable rejected_busy : int;
}

exception Busy
(** Raised when the guest already has [max_queued_ops] operations
    outstanding. *)

let create ?rng channels ~cap =
  { channels; cap; rng; pending = 0; rejected_busy = 0 }
let pending t = t.pending
let cap t = t.cap

(** The designated channel for backend-to-frontend notifications. *)
let notify_channel t = t.channels.(0)

let iter_channels t f = Array.iter f t.channels

(** Live notification-mode switch across the whole pool (an operator
    flipping a guest's links between interrupts / hybrid / polling
    mid-stream). *)
let set_comm_mode t mode = Array.iter (fun c -> Channel.set_comm_mode c mode) t.channels

let set_hybrid t on = Array.iter (fun c -> Channel.set_hybrid c on) t.channels

(** Retire every channel (planned handoff): stragglers inside {!rpc}
    raise {!Channel.Retired} and replay on the successor pool. *)
let retire t = Array.iter Channel.retire t.channels

(** Every ring drained on both sides. *)
let quiescent t = Array.for_all Channel.quiescent t.channels

(* Least-loaded dispatch; strict [<] so ties go to the lowest index
   (a fully idle guest always lands on channel 0). *)
let least_loaded t =
  let best = ref t.channels.(0) in
  let best_load = ref (Channel.load t.channels.(0)) in
  for i = 1 to Array.length t.channels - 1 do
    let l = Channel.load t.channels.(i) in
    if l < !best_load then begin
      best := t.channels.(i);
      best_load := l
    end
  done;
  !best

(* Power-of-two-choices: probe two distinct rings from the pool's
   deterministic stream and take the lighter (ties -> lower index, like
   the full scan).  O(1) per op where the scan is O(channels) — the
   win that matters once channels_per_guest stops being tiny — while
   the balls-in-bins bound keeps the worst ring within a constant
   factor of least-loaded. *)
let two_choices t rng =
  let n = Array.length t.channels in
  if n = 1 then t.channels.(0)
  else begin
    let a = Sim.Rng.int rng n in
    let b =
      (* second probe distinct from the first: draw from [n-1] and
         skip over [a], keeping the distribution uniform *)
      let b = Sim.Rng.int rng (n - 1) in
      if b >= a then b + 1 else b
    in
    let a, b = if a < b then (a, b) else (b, a) in
    if Channel.load t.channels.(b) < Channel.load t.channels.(a) then
      t.channels.(b)
    else t.channels.(a)
  end

let pick_channel t =
  match t.rng with None -> least_loaded t | Some rng -> two_choices t rng

let rpc ?timeout_us t bytes =
  if t.pending >= t.cap then begin
    t.rejected_busy <- t.rejected_busy + 1;
    raise Busy
  end;
  t.pending <- t.pending + 1;
  Fun.protect
    ~finally:(fun () -> t.pending <- t.pending - 1)
    (fun () -> Channel.rpc ?timeout_us (pick_channel t) bytes)

type stats = {
  rpcs : int;
  legs : int;
  cold_legs : int;
  rejected_busy : int;
  timeouts : int;
  retries : int;
  stale_responses : int;
  protocol_violations : int;
  req_poll_pickups : int;
  resp_poll_deliveries : int;
}

let stats t =
  let sum f = Array.fold_left (fun acc c -> acc + f (Channel.stats c)) 0 t.channels in
  {
    rpcs = sum (fun s -> s.Channel.rpcs);
    legs = sum (fun s -> s.Channel.legs);
    cold_legs = sum (fun s -> s.Channel.cold_legs);
    rejected_busy = t.rejected_busy;
    timeouts = sum (fun s -> s.Channel.timeouts);
    retries = sum (fun s -> s.Channel.retries);
    stale_responses = sum (fun s -> s.Channel.stale_responses);
    protocol_violations = sum (fun s -> s.Channel.protocol_violations);
    req_poll_pickups = sum (fun s -> s.Channel.req_poll_pickups);
    resp_poll_deliveries = sum (fun s -> s.Channel.resp_poll_deliveries);
  }
