(** A pool of CVD channels for one guest.

    The backend runs one worker per channel, giving each guest a few
    parallel servers (the paper's per-guest wait queue drained by
    backend threads, §5.1): a process blocked in a long read or poll
    does not stall the guest's other device files.  The per-guest
    operation cap (default 100) bounds how many operations may be
    outstanding or waiting — the DoS protection of §5.1. *)

type t = {
  channels : Channel.t array;
  free : Sim.Semaphore.t;
  cap : int;
  mutable pending : int; (* in flight + waiting for a channel *)
  mutable rejected_busy : int;
}

exception Busy
(** Raised when the guest already has [max_queued_ops] operations
    outstanding. *)

let create channels ~cap =
  {
    channels;
    free = Sim.Semaphore.create (Array.length channels);
    cap;
    pending = 0;
    rejected_busy = 0;
  }

(** The designated channel for backend-to-frontend notifications. *)
let notify_channel t = t.channels.(0)

let iter_channels t f = Array.iter f t.channels

let rpc ?timeout_us t bytes =
  if t.pending >= t.cap then begin
    t.rejected_busy <- t.rejected_busy + 1;
    raise Busy
  end;
  t.pending <- t.pending + 1;
  Fun.protect
    ~finally:(fun () -> t.pending <- t.pending - 1)
    (fun () ->
      Sim.Semaphore.acquire t.free;
      Fun.protect
        ~finally:(fun () -> Sim.Semaphore.release t.free)
        (fun () ->
          (* at least one channel is idle once [free] is acquired *)
          let rec pick i =
            if i >= Array.length t.channels then
              invalid_arg "Chan_pool: no free channel despite semaphore"
            else
              let chan = t.channels.(i) in
              if Sim.Semaphore.try_acquire (Channel.rpc_mutex chan) then chan
              else pick (i + 1)
          in
          let chan = pick 0 in
          Fun.protect
            ~finally:(fun () -> Sim.Semaphore.release (Channel.rpc_mutex chan))
            (fun () -> Channel.rpc_locked ?timeout_us chan bytes)))

type stats = {
  rpcs : int;
  legs : int;
  cold_legs : int;
  rejected_busy : int;
  timeouts : int;
  retries : int;
}

let stats t =
  let sum f = Array.fold_left (fun acc c -> acc + f (Channel.stats c)) 0 t.channels in
  {
    rpcs = sum (fun s -> s.Channel.rpcs);
    legs = sum (fun s -> s.Channel.legs);
    cold_legs = sum (fun s -> s.Channel.cold_legs);
    rejected_busy = t.rejected_busy;
    timeouts = sum (fun s -> s.Channel.timeouts);
    retries = sum (fun s -> s.Channel.retries);
  }
