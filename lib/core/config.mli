(** Paradice configuration: every tunable of the system and of its
    calibrated performance model (see EXPERIMENTS.md §Calibration). *)

type comm_mode = Interrupts | Polling

type ioctl_id_mode =
  | Analyzer_table (** static entries + JIT slices (§4.1) *)
  | Macro_only (** command-number decoding only; nested ioctls fail *)

type dispatch =
  | Least_loaded (** full ring scan; ties -> lowest index (default) *)
  | Two_choices
      (** power-of-two-choices: probe two deterministic random rings,
          take the lighter — O(1) per op instead of O(channels) *)

type t = {
  comm_mode : comm_mode;
  interrupt_latency_us : float;
  polling_latency_us : float;
  marshal_us : float;
  poll_window_us : float;
  hybrid : bool;
      (** NAPI-style adaptive notification: interrupt to wake, poll
          while work keeps arriving, doorbells suppressed meanwhile *)
  hybrid_poll_window_us : float;
      (** dry-poll wait for more work before re-arming doorbells *)
  hybrid_poll_budget_us : float;
      (** cumulative dry-polling cap per wakeup episode *)
  cold_threshold_us : float;
  cold_extra_interrupt_us : float;
  cold_extra_polling_us : float;
  validate_grants : bool;
  data_isolation : bool;
  hypercall_us : float;
  grant_declare_us : float;
  region_switch_per_page_us : float;
  ioctl_id_mode : ioctl_id_mode;
  max_queued_ops : int;
  channels_per_guest : int;
  ring_slots : int;
      (** descriptor-ring depth per channel (in-flight RPC bound) *)
  dispatch : dispatch;  (** how the pool routes an op to a ring *)
  dispatch_seed : int64;
      (** seeds the per-link [Two_choices] probe stream (derived per
          guest VM id: deterministic, per-link independent) *)
  rpc_timeout_us : float;
      (** per-attempt RPC deadline; 0 = block forever (default) *)
  rpc_retries : int;  (** resends after a timeout before ETIMEDOUT *)
  heartbeat_interval_us : float;  (** watchdog ping period; 0 = off *)
  heartbeat_miss_limit : int;  (** missed pings before declaring death *)
  poll_forward_chunk_us : float;  (** backend blocking chunk per poll RPC *)
  poll_forward_backoff_us : float;
      (** frontend sleep between not-ready poll chunks (spin bound) *)
  sanitize_requests : bool;
      (** post-decode request sanitization pass (ablation knob) *)
  ioctl_guards : bool;
      (** analyzer-generated per-ioctl argument sanitizers in front of
          the device handlers (ablation knob) *)
  max_transfer_bytes : int;
      (** largest read/write a guest may request (allocation bound) *)
  poll_timeout_cap_us : float;
      (** forwarded poll timeouts clamped into [0, cap] *)
  max_open_vfds : int;  (** open virtual descriptors per guest link *)
  max_grant_entries : int;
      (** outstanding grant-table entries per guest (quota) *)
  cpu_budget_us : float;
      (** backend CPU budget per guest per window; 0 = unlimited *)
  cpu_budget_window_us : float;  (** budget accounting window *)
  quarantine_threshold : int;
      (** misbehavior score triggering quarantine; 0 = never *)
  driver_reboot_us : float;  (** driver-VM kill -> serving again *)
  upgrade_drain_us : float;
      (** hot upgrade/migration: quiesce drain bound before stragglers
          are parked for replay on the successor *)
  fault_delay_us : float;  (** extra latency when the delay fault fires *)
  injector : Sim.Fault_inject.t option;  (** deterministic fault plan *)
  tracer : Obs.Trace.t;  (** span tracing sink; default {!Obs.Trace.disabled} *)
  sched_wake_us : float;
  da_irq_extra_us : float;
  input_delivery_us : float;
}

val default : t
val polling : t

(** Interrupt wake + bounded ring polling ({!field-hybrid} on). *)
val hybrid : t
val with_data_isolation : t -> t

(** §8's cross-machine DSM transport (future work), modelled as a
    10GbE RDMA-class interconnect. *)
val remote_dsm : t

val leg_latency : t -> float
val cold_extra : t -> float
val mode_name : t -> string
