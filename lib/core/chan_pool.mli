(** A pool of CVD channels for one guest: a few parallel backend
    workers (so a blocking read does not stall other device files),
    each serving a descriptor ring, under the per-guest operation cap
    of §5.1.  Operations are routed to the least-loaded ring. *)

type t

exception Busy
(** The guest has [max_queued_ops] operations outstanding already. *)

(** [rng] switches dispatch from the full least-loaded scan to
    power-of-two-choices over its (deterministic) stream: probe two
    distinct rings, take the lighter, ties to the lower index.  O(1)
    per op instead of O(channels); the backend passes a per-link
    stream derived from [Config.dispatch_seed] when
    [Config.dispatch = Two_choices]. *)
val create : ?rng:Sim.Rng.t -> Channel.t array -> cap:int -> t

(** Operations currently in flight or waiting for a ring slot. *)
val pending : t -> int

(** The per-guest operation cap ({!Busy} past it). *)
val cap : t -> int

(** The designated channel for backend-to-frontend notifications. *)
val notify_channel : t -> Channel.t

val iter_channels : t -> (Channel.t -> unit) -> unit

(** Live notification-mode switch applied to every channel (see
    {!Channel.set_comm_mode} / {!Channel.set_hybrid}). *)
val set_comm_mode : t -> Config.comm_mode -> unit

val set_hybrid : t -> bool -> unit

(** Retire every channel (planned handoff — see {!Channel.retire}). *)
val retire : t -> unit

(** Every ring drained on both sides. *)
val quiescent : t -> bool

(** One request/response exchange over the least-loaded channel's
    ring.  [timeout_us] overrides the configured RPC deadline (see
    {!Channel.rpc}). *)
val rpc : ?timeout_us:float -> t -> bytes -> bytes

type stats = {
  rpcs : int;
  legs : int;
  cold_legs : int;
  rejected_busy : int;
  timeouts : int;
  retries : int;
  stale_responses : int;
  protocol_violations : int;  (** responds on slots not in service *)
  req_poll_pickups : int;  (** hybrid request handoffs at polling cost *)
  resp_poll_deliveries : int;  (** hybrid response handoffs at polling cost *)
}

val stats : t -> stats
