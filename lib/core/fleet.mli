(** Fleet runtime: run independent shards in parallel on OCaml 5
    domains.  Shards share no mutable simulation state; cross-shard
    interaction happens only at placement (before) and aggregation
    (after).  Fixed inputs ⇒ bit-identical per-shard simulated
    results whatever the domain count. *)

(** [run_shards ~shards ?domains f] evaluates [f shard_id] for ids
    [0 .. shards-1] over [domains] OCaml domains (default:
    [Domain.recommended_domain_count], clamped to [shards]); shard
    [i] runs on domain [i mod domains], ascending within a domain,
    and [domains = 1] is a plain sequential loop.  Results are
    indexed by shard id.  If shards raise, all still run; the
    lowest-numbered shard's exception is re-raised. *)
val run_shards : shards:int -> ?domains:int -> (int -> 'a) -> 'a array

(** {1 Order-sensitive digests}

    For bit-identity checks across domain counts: digest every
    completion event in order; permutations yield different digests. *)

val digest_empty : int64
val digest_mix : int64 -> int64 -> int64

(** Fold a float (e.g. a simulated timestamp) bit-exactly. *)
val digest_mix_float : int64 -> float -> int64
