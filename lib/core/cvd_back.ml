(** The CVD backend (§3.1, §5.1).

    Lives in the driver VM.  For every guest it runs a worker thread
    that takes file operations off the channel, {e marks} itself as
    acting for the remote guest process (so the driver's memory
    operations redirect to the hypervisor — §5.2), invokes the real
    device driver's file-operation handlers through the driver VM's
    own VFS, and sends the result back.  Asynchronous driver
    notifications (fasync) are forwarded as channel notifications. *)

open Oskit

type file_state = {
  file : Defs.file; (* the real device file, shared by all workers *)
  mutable vmas : Defs.vma list; (* backend mirrors of guest mmaps *)
}

type guest_link = {
  guest_vm : Hypervisor.Vm.t;
  pool : Chan_pool.t;
  files : (int, file_state) Hashtbl.t; (* vfd -> state, shared by workers *)
  mutable next_vfd : int;
  mutable ops_served : int;
}

type t = {
  kernel : Kernel.t; (* the driver VM's kernel *)
  hyp : Hypervisor.Hyp.t;
  config : Config.t;
  policy : Policy.t; (* sharing policy (input -> foreground guest only) *)
  mutable exports : string list; (* device paths guests may open *)
  mutable links : guest_link list;
  mutable killed : bool; (* driver VM crashed: serve nothing more *)
}

let create ~kernel ~hyp ~config ~policy =
  { kernel; hyp; config; policy; exports = []; links = []; killed = false }

let export t path =
  if not (List.mem path t.exports) then t.exports <- path :: t.exports

let exports t = t.exports
let is_killed t = t.killed

(** The driver VM crashed: stop serving.  With [poison] (default) every
    channel of every link is killed, waking blocked frontends and
    workers so they observe the death.  [poison:false] models a silent
    death: the channels stay up but requests vanish unanswered (workers
    drop them and exit), so only RPC deadlines or the frontend watchdog
    can detect it.  Safe from engine callbacks ({!Channel.kill} is). *)
let kill ?(poison = true) t =
  if not t.killed then begin
    t.killed <- true;
    if poison then
      List.iter
        (fun link -> Chan_pool.iter_channels link.pool Channel.kill)
        t.links
  end

let link_stats link = (link.ops_served, Chan_pool.stats link.pool)

(* Fault-site keys (armed on [Config.injector]). *)
let site_wedge = "back.wedge"
let site_crash = "cvd.crash"

let find_file link vfd =
  match Hashtbl.find_opt link.files vfd with
  | Some fs -> fs
  | None -> Errno.fail Errno.EINVAL "bad virtual descriptor"

(* Execute one decoded request against the real driver.  The worker is
   already marked as remote for the issuing guest process.

   Operations dispatch on the file stored at open time, not through a
   worker's descriptor table: any of the guest's pool workers may
   carry any operation, so descriptors (which are per-task) cannot be
   used across workers. *)
let wrap f = try Proto.Rok (f ()) with Errno.Unix_error (e, _) -> Proto.Rerr (Errno.to_code e)

let dispatch t link worker (req : Proto.request) : Proto.response =
  let kernel = t.kernel in
  match req with
  | Proto.Rnoop -> Proto.Rok 0
  | Proto.Ropen { path } ->
      if not (List.mem path t.exports) then Proto.Rerr (Errno.to_code Errno.ENODEV)
      else
        wrap (fun () ->
            Kernel.charge_syscall kernel;
            match Devfs.lookup (Kernel.devfs kernel) path with
            | None -> Errno.fail Errno.ENODEV ("no such device: " ^ path)
            | Some dev ->
                if dev.Defs.exclusive && dev.Defs.open_count > 0 then
                  Errno.fail Errno.EBUSY (path ^ " is single-open");
                (* backend file ids live in their own space, derived
                   from the guest id and the vfd *)
                let file_id =
                  (Hypervisor.Vm.id link.guest_vm * 100_000) + link.next_vfd
                in
                let file =
                  {
                    Defs.file_id;
                    dev;
                    opener = worker;
                    nonblock = false;
                    fasync_subscribers = [];
                    closed = false;
                  }
                in
                dev.Defs.ops.Defs.fop_open worker file;
                dev.Defs.open_count <- dev.Defs.open_count + 1;
                let vfd = link.next_vfd in
                link.next_vfd <- vfd + 1;
                Hashtbl.replace link.files vfd { file; vmas = [] };
                vfd)
  | Proto.Rrelease { vfd } ->
      let fs = find_file link vfd in
      Hashtbl.remove link.files vfd;
      wrap (fun () ->
          Kernel.charge_syscall kernel;
          fs.file.Defs.dev.Defs.ops.Defs.fop_release worker fs.file;
          fs.file.Defs.closed <- true;
          fs.file.Defs.dev.Defs.open_count <- fs.file.Defs.dev.Defs.open_count - 1;
          fs.file.Defs.fasync_subscribers <- [];
          0)
  | Proto.Rread { vfd; buf; len } ->
      let fs = find_file link vfd in
      wrap (fun () ->
          Kernel.charge_syscall kernel;
          fs.file.Defs.dev.Defs.ops.Defs.fop_read worker fs.file ~buf ~len)
  | Proto.Rwrite { vfd; buf; len } ->
      let fs = find_file link vfd in
      wrap (fun () ->
          Kernel.charge_syscall kernel;
          fs.file.Defs.dev.Defs.ops.Defs.fop_write worker fs.file ~buf ~len)
  | Proto.Rioctl { vfd; cmd; arg } ->
      let fs = find_file link vfd in
      wrap (fun () ->
          Kernel.charge_syscall kernel;
          fs.file.Defs.dev.Defs.ops.Defs.fop_ioctl worker fs.file ~cmd ~arg)
  | Proto.Rmmap { vfd; gva; len; pgoff } ->
      let fs = find_file link vfd in
      (* Mirror the guest VMA; addresses stay in the guest's virtual
         space, which is what the driver and hypervisor need (§5.1's
         FreeBSD change passes exactly this range along). *)
      let vma =
        { Defs.vma_start = gva; vma_len = len; vma_file = fs.file; vma_pgoff = pgoff }
      in
      (try
         fs.file.Defs.dev.Defs.ops.Defs.fop_mmap worker fs.file vma;
         fs.vmas <- vma :: fs.vmas;
         Proto.Rok 0
       with Errno.Unix_error (e, _) -> Proto.Rerr (Errno.to_code e))
  | Proto.Rfault { vfd; gva } ->
      let fs = find_file link vfd in
      (match
         List.find_opt
           (fun v -> gva >= v.Defs.vma_start && gva < v.Defs.vma_start + v.Defs.vma_len)
           fs.vmas
       with
      | None -> Proto.Rerr (Errno.to_code Errno.EFAULT)
      | Some vma -> (
          try
            fs.file.Defs.dev.Defs.ops.Defs.fop_fault worker fs.file vma
              ~gva:(Memory.Addr.align_down gva);
            Proto.Rok 0
          with Errno.Unix_error (e, _) -> Proto.Rerr (Errno.to_code e)))
  | Proto.Rmunmap { vfd; gva; len } ->
      let fs = find_file link vfd in
      (* Tear down whatever the hypervisor mapped; pages never faulted
         in simply are not registered. *)
      List.iter
        (fun (addr, _) ->
          try Uaccess.remove_pfn worker ~gva:addr
          with Errno.Unix_error (Errno.EFAULT, _) -> ())
        (Memory.Addr.page_chunks ~addr:gva ~len);
      fs.vmas <-
        List.filter (fun v -> not (v.Defs.vma_start = gva && v.Defs.vma_len = len)) fs.vmas;
      Proto.Rok 0
  | Proto.Rpoll { vfd; want_in; want_out; timeout_us } ->
      let fs = find_file link vfd in
      (* the Vfs.poll loop, against the stored file *)
      (try
         Kernel.charge_syscall kernel;
         let deadline_left = ref timeout_us in
         let rec loop () =
           let r =
             fs.file.Defs.dev.Defs.ops.Defs.fop_poll worker fs.file ~want_in
               ~want_out
           in
           let ready = (want_in && r.Defs.pollin) || (want_out && r.Defs.pollout) in
           if ready || !deadline_left <= 0. then r
           else
             match r.Defs.poll_wq with
             | None -> r
             | Some wq ->
                 let before = Sim.Engine.now (Kernel.engine kernel) in
                 let woken = Wait_queue.sleep_timeout wq ~timeout:!deadline_left in
                 let elapsed = Sim.Engine.now (Kernel.engine kernel) -. before in
                 deadline_left := !deadline_left -. elapsed;
                 if woken then loop ()
                 else
                   fs.file.Defs.dev.Defs.ops.Defs.fop_poll worker fs.file
                     ~want_in ~want_out
         in
         let r = loop () in
         Proto.Rpoll_reply { pollin = r.Defs.pollin; pollout = r.Defs.pollout }
       with Errno.Unix_error (e, _) -> Proto.Rerr (Errno.to_code e))
  | Proto.Rfasync { vfd; on } ->
      let fs = find_file link vfd in
      wrap (fun () ->
          Kernel.charge_syscall kernel;
          fs.file.Defs.dev.Defs.ops.Defs.fop_fasync worker fs.file ~on;
          (if on then begin
             if not (List.memq worker fs.file.Defs.fasync_subscribers) then
               fs.file.Defs.fasync_subscribers <-
                 worker :: fs.file.Defs.fasync_subscribers
           end
           else
             fs.file.Defs.fasync_subscribers <-
               List.filter (fun t -> t != worker) fs.file.Defs.fasync_subscribers);
          0)

let serve_one t link worker (bytes : bytes) : Proto.response =
  match Proto.decode_request bytes with
  | exception Proto.Malformed _ -> Proto.Rerr (Errno.to_code Errno.EINVAL)
  | req, grant_ref, pid -> (
      link.ops_served <- link.ops_served + 1;
      match req with
      | Proto.Rnoop -> Proto.Rok 0 (* immediate return, no marking (§6.1.1) *)
      | _ -> (
          match Hypervisor.Hyp.find_process_pt t.hyp link.guest_vm ~pid with
          | None -> Proto.Rerr (Errno.to_code Errno.EFAULT)
          | Some pt ->
              let rc =
                {
                  Defs.rc_hyp = t.hyp;
                  rc_target = link.guest_vm;
                  rc_pt = pt;
                  rc_grant = grant_ref;
                  rc_charge =
                    (fun n -> Kernel.charge t.kernel (n *. t.config.Config.hypercall_us));
                  rc_trace = Proto.get_trace bytes;
                }
              in
              (try Task.with_remote worker rc (fun () -> dispatch t link worker req)
               with Errno.Unix_error (e, _) -> Proto.Rerr (Errno.to_code e))))

(** Connect a guest: create its channel pool and workers and start
    serving.  Returns the link; the frontend uses [link.pool]. *)
let connect t ~guest_vm =
  let engine = Kernel.engine t.kernel in
  let n = max 1 t.config.Config.channels_per_guest in
  let channels =
    Array.init n (fun _ ->
        Channel.create engine ~config:t.config ~phys:(Hypervisor.Hyp.phys t.hyp)
          ~guest_vm ~driver_vm:(Kernel.vm t.kernel))
  in
  let pool = Chan_pool.create channels ~cap:t.config.Config.max_queued_ops in
  let link =
    { guest_vm; pool; files = Hashtbl.create 8; next_vfd = 1; ops_served = 0 }
  in
  t.links <- link :: t.links;
  Array.iter
    (fun channel ->
      let worker =
        Kernel.spawn_task t.kernel
          ~name:(Printf.sprintf "cvd-worker-%s" (Hypervisor.Vm.name guest_vm))
      in
      (* forward driver fasync events to the guest, whichever worker
         happened to register the subscription — but only while this
         guest is in the foreground (input policy, §5.1) *)
      Task.on_sigio worker (fun () ->
          if Policy.input_target t.policy (Hypervisor.Vm.id guest_vm) then
            Channel.notify (Chan_pool.notify_channel pool));
      Sim.Engine.spawn engine ~name:"cvd-backend" (fun () ->
          let fires key =
            match t.config.Config.injector with
            | None -> false
            | Some inj -> Sim.Fault_inject.fires inj ~key
          in
          let rec loop () =
            match Channel.next_request channel with
            | None -> () (* channel dead: worker exits *)
            | Some _ when t.killed -> ()
            | Some (slot, bytes) ->
                let resp =
                  Obs.Trace.with_span t.config.Config.tracer
                    ~trace:(Proto.get_trace bytes) ~lane:Obs.Trace.Backend
                    ~cat:"stage" ~name:"back:dispatch" (fun () ->
                      serve_one t link worker bytes)
                in
                (* "back.wedge": the worker hangs forever between
                   executing the operation and answering — a stuck
                   driver thread.  Only an RPC deadline recovers the
                   frontend. *)
                if fires site_wedge then Sim.Engine.suspend (fun _ -> ());
                (* "cvd.crash": the driver VM dies right here, mid-RPC
                   — the operation ran but its response is never sent.
                   on_fire hooks (armed by Machine) perform the actual
                   kill before we notice [killed] below. *)
                if fires site_crash then ignore resp
                else if not t.killed then
                  Channel.respond channel ~slot (Proto.encode_response resp);
                loop ()
          in
          loop ()))
    channels;
  link
