(** The CVD backend (§3.1, §5.1).

    Lives in the driver VM.  For every guest it runs a worker thread
    that takes file operations off the channel, {e marks} itself as
    acting for the remote guest process (so the driver's memory
    operations redirect to the hypervisor — §5.2), invokes the real
    device driver's file-operation handlers through the driver VM's
    own VFS, and sends the result back.  Asynchronous driver
    notifications (fasync) are forwarded as channel notifications. *)

open Oskit

type file_state = {
  file : Defs.file; (* the real device file, shared by all workers *)
  mutable vmas : Defs.vma list; (* backend mirrors of guest mmaps *)
}

type guest_link = {
  guest_vm : Hypervisor.Vm.t;
  pool : Chan_pool.t;
  files : (int, file_state) Hashtbl.t; (* vfd -> state, shared by workers *)
  mutable next_vfd : int;
  mutable ops_served : int;
  (* -- containment (§4, §7.1: the backend treats every guest as
        potentially hostile).  Counters are per guest so one attacker
        cannot pollute a sibling's record. -- *)
  mutable malformed : int; (* undecodable descriptors *)
  mutable rejected : int; (* sanitization refusals *)
  mutable grant_faults : int; (* hypervisor grant-validation rejections *)
  mutable quota_breaches : int; (* vfd-cap and grant-quota refusals *)
  mutable throttle_events : int; (* CPU-budget enforcement pauses *)
  mutable cpu_used_us : float; (* backend CPU charged this window *)
  mutable cpu_window_start : float;
  mutable max_dispatch_len : int; (* largest read/write len past sanitize *)
  mutable score : int; (* weighted misbehavior score *)
  mutable quarantined : bool;
  mutable grant_quota_seen : int; (* Grant_table.quota_breaches last read *)
}

type t = {
  kernel : Kernel.t; (* the driver VM's kernel *)
  hyp : Hypervisor.Hyp.t;
  config : Config.t;
  policy : Policy.t; (* sharing policy (input -> foreground guest only) *)
  mutable exports : string list; (* device paths guests may open *)
  mutable links : guest_link list;
  mutable killed : bool; (* driver VM crashed: serve nothing more *)
  limits : Wire_spec.limits;
      (* the sanitization bounds, packed once from config; live serve
         and checkpoint restore vet requests against the same record *)
}

let create ~kernel ~hyp ~config ~policy =
  {
    kernel;
    hyp;
    config;
    policy;
    exports = [];
    links = [];
    killed = false;
    limits =
      {
        Wire_spec.max_transfer_bytes = config.Config.max_transfer_bytes;
        poll_timeout_cap_us = config.Config.poll_timeout_cap_us;
        grant_capacity = Hypervisor.Grant_table.capacity;
      };
  }

let export t path =
  if not (List.mem path t.exports) then t.exports <- path :: t.exports

let exports t = t.exports
let is_killed t = t.killed

(** The driver VM crashed: stop serving.  With [poison] (default) every
    channel of every link is killed, waking blocked frontends and
    workers so they observe the death.  [poison:false] models a silent
    death: the channels stay up but requests vanish unanswered (workers
    drop them and exit), so only RPC deadlines or the frontend watchdog
    can detect it.  Safe from engine callbacks ({!Channel.kill} is). *)
let kill ?(poison = true) t =
  if not t.killed then begin
    t.killed <- true;
    if poison then
      List.iter
        (fun link -> Chan_pool.iter_channels link.pool Channel.kill)
        t.links
  end

let link_stats link = (link.ops_served, Chan_pool.stats link.pool)
let links t = t.links
let has_link t link = List.memq link t.links

(* Fault-site keys (armed on [Config.injector]). *)
let site_wedge = "back.wedge"
let site_crash = "cvd.crash"

(* ---- hostile-guest containment ---- *)

(* Misbehavior weights: deliberate protocol violations (garbage bytes,
   undeclared memory operations) weigh more than bound violations a
   buggy-but-honest guest could also hit (oversized transfers, quota
   exhaustion). *)
let score_malformed = 5
let score_rejected = 3
let score_grant_fault = 5
let score_quota_breach = 2

let m_incr ?by t name =
  if Obs.Trace.enabled t.config.Config.tracer then
    Obs.Metrics.incr ?by (Obs.Trace.metrics t.config.Config.tracer) name

let audit t = Hypervisor.Hyp.audit t.hyp

let note_sanitize_rejection t =
  let a = audit t in
  a.Hypervisor.Audit.sanitize_rejections <-
    a.Hypervisor.Audit.sanitize_rejections + 1

(** Quarantine a misbehaving guest: §4.1's fault containment turned
    around — the backend protects itself and the sibling guests from a
    hostile frontend.  Everything the guest holds on the backend side
    is torn down: open files force-released (subscribers dropped, open
    counts restored so exclusive devices do not stay EBUSY), its
    outstanding grants revoked, its cross-VM mappings destroyed, its
    channels poisoned.  Sibling links share none of that state and
    keep full service. *)
let quarantine t link worker =
  if not link.quarantined then begin
    link.quarantined <- true;
    let a = audit t in
    a.Hypervisor.Audit.quarantines <- a.Hypervisor.Audit.quarantines + 1;
    m_incr t "containment.quarantines";
    Hashtbl.iter
      (fun _ fs ->
        if not fs.file.Defs.closed then begin
          (try fs.file.Defs.dev.Defs.ops.Defs.fop_release worker fs.file
           with _ -> () (* a raising driver must not block teardown *));
          fs.file.Defs.closed <- true;
          fs.file.Defs.dev.Defs.open_count <-
            fs.file.Defs.dev.Defs.open_count - 1;
          fs.file.Defs.fasync_subscribers <- []
        end)
      link.files;
    Hashtbl.reset link.files;
    (match Hypervisor.Hyp.grant_table_of t.hyp link.guest_vm with
    | Some table -> ignore (Hypervisor.Grant_table.revoke_all table)
    | None -> ());
    ignore (Hypervisor.Hyp.teardown_vm_mappings t.hyp ~target:link.guest_vm);
    Chan_pool.iter_channels link.pool Channel.kill
  end

(* Each containment event adds weighted points; past the configured
   threshold the guest is cut off.  0 disables quarantine (counters
   still accumulate for observability). *)
let note_misbehavior t link worker points =
  link.score <- link.score + points;
  let threshold = t.config.Config.quarantine_threshold in
  if threshold > 0 && (not link.quarantined) && link.score >= threshold then
    quarantine t link worker

(* CPU-budget rate limiting: a guest that burned more backend CPU than
   [cpu_budget_us] inside one accounting window has its next operation
   delayed to the window boundary, so a guest spinning expensive
   operations cannot starve siblings' ring service.  Throttling is
   rate limiting, not misbehavior — it does not feed the score. *)
let throttle t link =
  let budget = t.config.Config.cpu_budget_us in
  if budget > 0. then begin
    let engine = Kernel.engine t.kernel in
    let window = t.config.Config.cpu_budget_window_us in
    let now = Sim.Engine.now engine in
    if now -. link.cpu_window_start >= window then begin
      link.cpu_window_start <- now;
      link.cpu_used_us <- 0.
    end
    else if link.cpu_used_us >= budget then begin
      link.throttle_events <- link.throttle_events + 1;
      m_incr t "containment.throttles";
      Sim.Engine.wait (link.cpu_window_start +. window -. now);
      link.cpu_window_start <- Sim.Engine.now engine;
      link.cpu_used_us <- 0.
    end
  end

let find_file link vfd =
  match Hashtbl.find_opt link.files vfd with
  | Some fs -> fs
  | None -> Errno.fail Errno.EINVAL "bad virtual descriptor"

(* Execute one decoded request against the real driver.  The worker is
   already marked as remote for the issuing guest process.

   Operations dispatch on the file stored at open time, not through a
   worker's descriptor table: any of the guest's pool workers may
   carry any operation, so descriptors (which are per-task) cannot be
   used across workers. *)
let wrap f = try Proto.Rok (f ()) with Errno.Unix_error (e, _) -> Proto.Rerr (Errno.to_code e)

(* The analyzer-generated per-ioctl argument sanitizer (the §5.1
   facts → §4 runtime-checking loop): evaluated before the handler
   runs, reading the guest argument struct straight through the
   hypervisor — uncharged and grant-free, so the handler still
   performs (and is billed for) the real grant-checked copies and
   clean workloads keep bit-identical simulated times.  Returns [Some
   response] when the guard rejects; a rejection rides the same
   misbehavior-scoring path as transport-level sanitization. *)
let guard_ioctl t link worker fs ~cmd ~arg =
  if not t.config.Config.ioctl_guards then None
  else
    match worker.Defs.remote with
    | None -> None (* local caller: its memory is its own *)
    | Some rc -> (
        let dev_class = fs.file.Defs.dev.Defs.dev_class in
        let read ~addr ~len =
          Hypervisor.Vm.read_gva rc.Defs.rc_target ~pt:rc.Defs.rc_pt ~gva:addr ~len
        in
        match Ioctl_guard.check ~dev_class ~cmd ~arg ~limits:t.limits ~read with
        | Ioctl_guard.Pass -> None
        | Ioctl_guard.Reject { handler; violated = _ } ->
            link.rejected <- link.rejected + 1;
            note_sanitize_rejection t;
            m_incr t (Printf.sprintf "sanitize.%s.%s" dev_class handler);
            note_misbehavior t link worker score_rejected;
            Some (Proto.Rerr (Errno.to_code Errno.EINVAL)))

let rec dispatch t link worker (req : Proto.request) : Proto.response =
  let kernel = t.kernel in
  match req with
  | Proto.Rnoop -> Proto.Rok 0
  | Proto.Rbatch reqs ->
      (* io_uring-style multi-op descriptor: execute the sub-ops
         sequentially, each inside its own trace span (cat "subop" —
         not "stage", so the stage-tiling reconciliation over the op
         span is untouched), and return one sub-response per sub-op in
         submission order.  A failing sub-op does not abort the batch:
         its reply slot carries the errno, like an io_uring CQE.
         [Proto.validate] has already vetted every sub-op through the
         same gate as a singleton. *)
      let tracer = t.config.Config.tracer in
      let trace =
        match worker.Defs.remote with Some rc -> rc.Defs.rc_trace | None -> 0
      in
      let serve_sub i sub =
        let sp =
          Obs.Trace.span_begin tracer ~trace ~lane:Obs.Trace.Backend
            ~cat:"subop"
            ~name:(Printf.sprintf "subop:%s" (Proto.request_name sub))
            ()
        in
        Obs.Trace.span_arg sp "index" (float_of_int i);
        let resp =
          match sub with
          | Proto.Rbatch _ ->
              (* unreachable past validate; never recurse *)
              Proto.Rerr (Errno.to_code Errno.EINVAL)
          | _ -> (
              try dispatch t link worker sub
              with Errno.Unix_error (e, _) -> Proto.Rerr (Errno.to_code e))
        in
        Obs.Trace.span_end tracer sp;
        resp
      in
      Proto.Rbatch_reply (List.mapi serve_sub reqs)
  | Proto.Ropen { path } ->
      if Hashtbl.length link.files >= t.config.Config.max_open_vfds then begin
        (* per-guest descriptor cap: an open loop exhausts the guest's
           own allowance, not the backend's tables *)
        link.quota_breaches <- link.quota_breaches + 1;
        m_incr t "containment.quota_breaches";
        note_misbehavior t link worker score_quota_breach;
        Proto.Rerr (Errno.to_code Errno.EBUSY)
      end
      else if not (List.mem path t.exports) then
        Proto.Rerr (Errno.to_code Errno.ENODEV)
      else
        wrap (fun () ->
            Kernel.charge_syscall kernel;
            match Devfs.lookup (Kernel.devfs kernel) path with
            | None -> Errno.fail Errno.ENODEV ("no such device: " ^ path)
            | Some dev ->
                if dev.Defs.exclusive && dev.Defs.open_count > 0 then
                  Errno.fail Errno.EBUSY (path ^ " is single-open");
                (* backend file ids live in their own space, derived
                   from the guest id and the vfd *)
                let file_id =
                  (Hypervisor.Vm.id link.guest_vm * 100_000) + link.next_vfd
                in
                let file =
                  {
                    Defs.file_id;
                    dev;
                    opener = worker;
                    nonblock = false;
                    fasync_subscribers = [];
                    closed = false;
                  }
                in
                dev.Defs.ops.Defs.fop_open worker file;
                dev.Defs.open_count <- dev.Defs.open_count + 1;
                let vfd = link.next_vfd in
                link.next_vfd <- vfd + 1;
                Hashtbl.replace link.files vfd { file; vmas = [] };
                vfd)
  | Proto.Rrelease { vfd } ->
      let fs = find_file link vfd in
      Hashtbl.remove link.files vfd;
      wrap (fun () ->
          Kernel.charge_syscall kernel;
          (* The driver's release handler may fail; the backend's own
             bookkeeping must not depend on it.  Without the protect, a
             raising fop_release leaked the file's fasync subscription
             (and the device open count): a guest that armed SIGIO and
             then released kept a dead worker subscribed to driver
             notifications forever. *)
          Fun.protect
            ~finally:(fun () ->
              fs.file.Defs.closed <- true;
              fs.file.Defs.dev.Defs.open_count <-
                fs.file.Defs.dev.Defs.open_count - 1;
              fs.file.Defs.fasync_subscribers <- [])
            (fun () ->
              fs.file.Defs.dev.Defs.ops.Defs.fop_release worker fs.file);
          0)
  | Proto.Rread { vfd; buf; len } ->
      let fs = find_file link vfd in
      link.max_dispatch_len <- max link.max_dispatch_len len;
      wrap (fun () ->
          Kernel.charge_syscall kernel;
          fs.file.Defs.dev.Defs.ops.Defs.fop_read worker fs.file ~buf ~len)
  | Proto.Rwrite { vfd; buf; len } ->
      let fs = find_file link vfd in
      link.max_dispatch_len <- max link.max_dispatch_len len;
      wrap (fun () ->
          Kernel.charge_syscall kernel;
          fs.file.Defs.dev.Defs.ops.Defs.fop_write worker fs.file ~buf ~len)
  | Proto.Rioctl { vfd; cmd; arg } -> (
      let fs = find_file link vfd in
      match guard_ioctl t link worker fs ~cmd ~arg with
      | Some rejection -> rejection
      | None ->
          wrap (fun () ->
              Kernel.charge_syscall kernel;
              fs.file.Defs.dev.Defs.ops.Defs.fop_ioctl worker fs.file ~cmd ~arg))
  | Proto.Rmmap { vfd; gva; len; pgoff } ->
      let fs = find_file link vfd in
      (* Mirror the guest VMA; addresses stay in the guest's virtual
         space, which is what the driver and hypervisor need (§5.1's
         FreeBSD change passes exactly this range along). *)
      let vma =
        { Defs.vma_start = gva; vma_len = len; vma_file = fs.file; vma_pgoff = pgoff }
      in
      (try
         fs.file.Defs.dev.Defs.ops.Defs.fop_mmap worker fs.file vma;
         fs.vmas <- vma :: fs.vmas;
         Proto.Rok 0
       with Errno.Unix_error (e, _) -> Proto.Rerr (Errno.to_code e))
  | Proto.Rfault { vfd; gva } ->
      let fs = find_file link vfd in
      (match
         List.find_opt
           (fun v -> gva >= v.Defs.vma_start && gva < v.Defs.vma_start + v.Defs.vma_len)
           fs.vmas
       with
      | None -> Proto.Rerr (Errno.to_code Errno.EFAULT)
      | Some vma -> (
          try
            fs.file.Defs.dev.Defs.ops.Defs.fop_fault worker fs.file vma
              ~gva:(Memory.Addr.align_down gva);
            Proto.Rok 0
          with Errno.Unix_error (e, _) -> Proto.Rerr (Errno.to_code e)))
  | Proto.Rmunmap { vfd; gva; len } ->
      let fs = find_file link vfd in
      (* Tear down whatever the hypervisor mapped; pages never faulted
         in simply are not registered. *)
      List.iter
        (fun (addr, _) ->
          try Uaccess.remove_pfn worker ~gva:addr
          with Errno.Unix_error (Errno.EFAULT, _) -> ())
        (Memory.Addr.page_chunks ~addr:gva ~len);
      fs.vmas <-
        List.filter (fun v -> not (v.Defs.vma_start = gva && v.Defs.vma_len = len)) fs.vmas;
      Proto.Rok 0
  | Proto.Rpoll { vfd; want_in; want_out; timeout_us } ->
      let fs = find_file link vfd in
      (* the Vfs.poll loop, against the stored file *)
      (try
         Kernel.charge_syscall kernel;
         let deadline_left = ref timeout_us in
         let rec loop () =
           let r =
             fs.file.Defs.dev.Defs.ops.Defs.fop_poll worker fs.file ~want_in
               ~want_out
           in
           let ready = (want_in && r.Defs.pollin) || (want_out && r.Defs.pollout) in
           if ready || !deadline_left <= 0. then r
           else
             match r.Defs.poll_wq with
             | None -> r
             | Some wq ->
                 let before = Sim.Engine.now (Kernel.engine kernel) in
                 let woken = Wait_queue.sleep_timeout wq ~timeout:!deadline_left in
                 let elapsed = Sim.Engine.now (Kernel.engine kernel) -. before in
                 deadline_left := !deadline_left -. elapsed;
                 if woken then loop ()
                 else
                   fs.file.Defs.dev.Defs.ops.Defs.fop_poll worker fs.file
                     ~want_in ~want_out
         in
         let r = loop () in
         Proto.Rpoll_reply { pollin = r.Defs.pollin; pollout = r.Defs.pollout }
       with Errno.Unix_error (e, _) -> Proto.Rerr (Errno.to_code e))
  | Proto.Rfasync { vfd; on } ->
      let fs = find_file link vfd in
      wrap (fun () ->
          Kernel.charge_syscall kernel;
          fs.file.Defs.dev.Defs.ops.Defs.fop_fasync worker fs.file ~on;
          (if on then begin
             if not (List.memq worker fs.file.Defs.fasync_subscribers) then
               fs.file.Defs.fasync_subscribers <-
                 worker :: fs.file.Defs.fasync_subscribers
           end
           else
             fs.file.Defs.fasync_subscribers <-
               List.filter (fun t -> t != worker) fs.file.Defs.fasync_subscribers);
          0)

(* Grant-quota refusals happen on the frontend (declare) side, invisible
   to the backend's request path; pick up the counter delta so they
   feed the same per-guest score. *)
let absorb_grant_quota_breaches t link worker =
  match Hypervisor.Hyp.grant_table_of t.hyp link.guest_vm with
  | None -> ()
  | Some table ->
      let b = Hypervisor.Grant_table.quota_breaches table in
      if b > link.grant_quota_seen then begin
        let d = b - link.grant_quota_seen in
        link.grant_quota_seen <- b;
        link.quota_breaches <- link.quota_breaches + d;
        m_incr ~by:d t "containment.quota_breaches";
        note_misbehavior t link worker (d * score_quota_breach)
      end

(* Serve one raw descriptor: decode, sanitize, dispatch.  Containment
   contract: every failure mode of a hostile descriptor — garbage
   bytes, out-of-bound fields, undeclared memory operations, a driver
   handler that raises — becomes an error response; no exception
   escapes to the worker loop. *)
let serve_one t link worker (bytes : bytes) : Proto.response =
  absorb_grant_quota_breaches t link worker;
  if link.quarantined then Proto.Rerr (Errno.to_code Errno.EPERM)
  else
    match Proto.decode_request bytes with
    | exception Proto.Malformed _ ->
        link.malformed <- link.malformed + 1;
        note_sanitize_rejection t;
        m_incr t "containment.malformed";
        note_misbehavior t link worker score_malformed;
        Proto.Rerr (Errno.to_code Errno.EINVAL)
    | (_, grant_ref, pid) as decoded -> (
        let sanitized =
          if t.config.Config.sanitize_requests then
            Proto.validate_limits ~limits:t.limits decoded
          else
            let r, _, _ = decoded in
            Ok r
        in
        match sanitized with
        | Error _ ->
            link.rejected <- link.rejected + 1;
            note_sanitize_rejection t;
            m_incr t "containment.rejected";
            note_misbehavior t link worker score_rejected;
            Proto.Rerr (Errno.to_code Errno.EINVAL)
        | Ok req -> (
            link.ops_served <- link.ops_served + 1;
            match req with
            | Proto.Rnoop ->
                Proto.Rok 0 (* immediate return, no marking (§6.1.1) *)
            | _ -> (
                match Hypervisor.Hyp.find_process_pt t.hyp link.guest_vm ~pid with
                | None -> Proto.Rerr (Errno.to_code Errno.EFAULT)
                | Some pt ->
                    throttle t link;
                    let rc =
                      {
                        Defs.rc_hyp = t.hyp;
                        rc_target = link.guest_vm;
                        rc_pt = pt;
                        rc_grant = grant_ref;
                        rc_charge =
                          (fun n ->
                            let us = n *. t.config.Config.hypercall_us in
                            link.cpu_used_us <- link.cpu_used_us +. us;
                            Kernel.charge t.kernel us);
                        rc_trace = Proto.get_trace bytes;
                      }
                    in
                    let vm_id = Hypervisor.Vm.id link.guest_vm in
                    let rej_before =
                      Hypervisor.Audit.guest_rejections (audit t) ~vm_id
                    in
                    link.cpu_used_us <-
                      link.cpu_used_us +. Kernel.syscall_cost t.kernel;
                    let resp =
                      try
                        Task.with_remote worker rc (fun () ->
                            dispatch t link worker req)
                      with
                      | Errno.Unix_error (e, _) -> Proto.Rerr (Errno.to_code e)
                      | _ ->
                          (* an unexpected driver/backend exception is
                             contained as EIO, never propagated into
                             the worker loop *)
                          m_incr t "containment.dispatch_exn";
                          Proto.Rerr (Errno.to_code Errno.EIO)
                    in
                    let rej_after =
                      Hypervisor.Audit.guest_rejections (audit t) ~vm_id
                    in
                    if rej_after > rej_before then begin
                      let d = rej_after - rej_before in
                      link.grant_faults <- link.grant_faults + d;
                      m_incr ~by:d t "containment.grant_faults";
                      note_misbehavior t link worker (d * score_grant_fault)
                    end;
                    if link.quarantined then
                      Proto.Rerr (Errno.to_code Errno.EPERM)
                    else resp)))

(** Connect a guest: create its channel pool and workers and start
    serving.  Returns the link; the frontend uses [link.pool]. *)
let connect t ~guest_vm =
  let engine = Kernel.engine t.kernel in
  let n = max 1 t.config.Config.channels_per_guest in
  let channels =
    Array.init n (fun i ->
        (* deterministic per machine: guest VM ids are per-hypervisor,
           so ring counter-series names never depend on how many
           machines (fleet shards) this process built before *)
        Channel.create
          ~uid:((Hypervisor.Vm.id guest_vm * 1000) + i + 1)
          engine ~config:t.config ~phys:(Hypervisor.Hyp.phys t.hyp) ~guest_vm
          ~driver_vm:(Kernel.vm t.kernel))
  in
  let rng =
    match t.config.Config.dispatch with
    | Config.Least_loaded -> None
    | Config.Two_choices ->
        (* keyed per link by guest VM id: dispatch draws are a pure
           function of (dispatch_seed, vm id) — independent of how
           many links exist or connect order *)
        Some
          (Sim.Rng.derive ~seed:t.config.Config.dispatch_seed
             ~index:(Hypervisor.Vm.id guest_vm))
  in
  let pool =
    Chan_pool.create ?rng channels ~cap:t.config.Config.max_queued_ops
  in
  let link =
    {
      guest_vm;
      pool;
      files = Hashtbl.create 8;
      next_vfd = 1;
      ops_served = 0;
      malformed = 0;
      rejected = 0;
      grant_faults = 0;
      quota_breaches = 0;
      throttle_events = 0;
      cpu_used_us = 0.;
      cpu_window_start = 0.;
      max_dispatch_len = 0;
      score = 0;
      quarantined = false;
      grant_quota_seen = 0;
    }
  in
  t.links <- link :: t.links;
  Array.iter
    (fun channel ->
      let worker =
        Kernel.spawn_task t.kernel
          ~name:(Printf.sprintf "cvd-worker-%s" (Hypervisor.Vm.name guest_vm))
      in
      (* forward driver fasync events to the guest, whichever worker
         happened to register the subscription — but only while this
         guest is in the foreground (input policy, §5.1) *)
      Task.on_sigio worker (fun () ->
          if Policy.input_target t.policy (Hypervisor.Vm.id guest_vm) then
            Channel.notify (Chan_pool.notify_channel pool));
      Sim.Engine.spawn engine ~name:"cvd-backend" (fun () ->
          let fires key =
            match t.config.Config.injector with
            | None -> false
            | Some inj -> Sim.Fault_inject.fires inj ~key
          in
          let rec loop () =
            match Channel.next_request channel with
            | None -> () (* channel dead: worker exits *)
            | Some _ when t.killed -> ()
            | Some (slot, bytes) ->
                let resp =
                  Obs.Trace.with_span t.config.Config.tracer
                    ~trace:(Proto.get_trace bytes) ~lane:Obs.Trace.Backend
                    ~cat:"stage" ~name:"back:dispatch" (fun () ->
                      serve_one t link worker bytes)
                in
                (* "back.wedge": the worker hangs forever between
                   executing the operation and answering — a stuck
                   driver thread.  Only an RPC deadline recovers the
                   frontend. *)
                if fires site_wedge then Sim.Engine.suspend (fun _ -> ());
                (* "cvd.crash": the driver VM dies right here, mid-RPC
                   — the operation ran but its response is never sent.
                   on_fire hooks (armed by Machine) perform the actual
                   kill before we notice [killed] below. *)
                if fires site_crash then ignore resp
                else if not t.killed then begin
                  (* A respond on a slot no longer in service is a
                     counted protocol violation (only a guest rewriting
                     the control page under the backend's feet can
                     cause it): score the guest and drop the response
                     instead of letting the EIO kill the worker. *)
                  try Channel.respond channel ~slot (Proto.encode_response resp)
                  with Errno.Unix_error (Errno.EIO, _) ->
                    note_misbehavior t link worker score_rejected
                end;
                loop ()
          in
          loop ()))
    channels;
  link

(* ------------------------------------------------------------------ *)
(* Planned handoff: checkpoint / restore (hot upgrade, migration)      *)
(* ------------------------------------------------------------------ *)

let grants_of t guest_vm =
  match Hypervisor.Hyp.grant_table_of t.hyp guest_vm with
  | Some table -> Hypervisor.Grant_table.snapshot table
  | None -> []

(** Checkpoint everything the successor driver VM needs about this
    guest's session: open files (ascending vfd) with their flags and
    mirrored VMA layout, the outstanding grant groups, and the full
    containment record — a hostile guest must not launder its
    misbehavior history through an upgrade. *)
let checkpoint_link t link : Snapshot.link_snap =
  let files =
    Hashtbl.fold (fun vfd fs acc -> (vfd, fs) :: acc) link.files []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  {
    Snapshot.ls_guest_vm_id = Hypervisor.Vm.id link.guest_vm;
    ls_next_vfd = link.next_vfd;
    ls_ops_served = link.ops_served;
    ls_malformed = link.malformed;
    ls_rejected = link.rejected;
    ls_grant_faults = link.grant_faults;
    ls_quota_breaches = link.quota_breaches;
    ls_score = link.score;
    ls_quarantined = link.quarantined;
    ls_files =
      List.map
        (fun (vfd, fs) ->
          {
            Snapshot.fr_vfd = vfd;
            fr_path = fs.file.Defs.dev.Defs.dev_path;
            fr_fasync = fs.file.Defs.fasync_subscribers <> [];
            fr_nonblock = fs.file.Defs.nonblock;
            (* [vmas] is newest-first (live prepends); store oldest
               first so restore rebuilds the same order *)
            fr_vmas =
              List.rev_map
                (fun v -> (v.Defs.vma_start, v.Defs.vma_len, v.Defs.vma_pgoff))
                fs.vmas;
          })
        files;
    ls_grants = grants_of t link.guest_vm;
  }

(** Quietly close every backend file the link holds — the departing
    driver VM's side of a handoff.  Device open counts drop (so the
    successor can reopen exclusive devices) and SIGIO subscriptions are
    dropped, but — unlike {!quarantine} — grants and hypervisor
    mappings are left intact: they are guest-keyed and the successor
    re-validates them in place. *)
let release_link_files t link =
  if Hashtbl.length link.files > 0 then begin
    let reaper = Kernel.spawn_task t.kernel ~name:"cvd-reaper" in
    Hashtbl.iter
      (fun _ fs ->
        if not fs.file.Defs.closed then begin
          (try fs.file.Defs.dev.Defs.ops.Defs.fop_release reaper fs.file
           with _ -> () (* a raising driver must not block the handoff *));
          fs.file.Defs.closed <- true;
          fs.file.Defs.dev.Defs.open_count <-
            fs.file.Defs.dev.Defs.open_count - 1;
          fs.file.Defs.fasync_subscribers <- []
        end)
      link.files;
    Hashtbl.reset link.files
  end

let detach_link t link = t.links <- List.filter (fun l -> l != link) t.links

type restore_stats = {
  rs_files : int; (* files re-opened at their snapshotted vfd *)
  rs_dropped : int; (* snapshot entries refused by re-validation *)
  rs_vmas : int; (* VMA mirrors rebuilt *)
  rs_fasync : int; (* SIGIO subscriptions re-armed *)
}

let fault_check t key =
  match t.config.Config.injector with
  | None -> ()
  | Some inj -> Sim.Fault_inject.check inj ~key

(* Restore validation runs the {e same} sanitization pass as a live
   request: a snapshotted path or VMA range the backend would refuse
   from the wire is refused from the checkpoint too. *)
let sanitize t decoded = Proto.validate_limits ~limits:t.limits decoded

(** Restore a checkpointed session onto {e this} (successor) backend:
    fresh channel pool and workers via {!connect}, the containment
    record carried over, then every snapshotted file re-validated —
    through the same checks a live [Ropen] faces — and re-opened at
    its preserved vfd.  VMA mirrors are rebuilt without re-running
    [fop_mmap]: the hypervisor's cross-VM mappings are keyed by the
    guest and survived the swap in place.  Entries that fail
    re-validation are dropped (counted), never trusted.

    [fail_site] is a per-file abort-style fault site
    ({!Sim.Fault_inject.check}); when it fires the partial restore is
    torn down — files quietly closed, channels killed, link detached —
    and {!Sim.Fault_inject.Injected} re-raised for the caller's
    rollback.  A quarantined snapshot restores its record only: the
    guest stays cut off, with no files and no service. *)
let restore_link t ~(snap : Snapshot.link_snap) ~guest_vm ?fail_site () =
  let link = connect t ~guest_vm in
  link.next_vfd <- max link.next_vfd snap.Snapshot.ls_next_vfd;
  link.ops_served <- snap.Snapshot.ls_ops_served;
  link.malformed <- snap.Snapshot.ls_malformed;
  link.rejected <- snap.Snapshot.ls_rejected;
  link.grant_faults <- snap.Snapshot.ls_grant_faults;
  link.quota_breaches <- snap.Snapshot.ls_quota_breaches;
  link.score <- snap.Snapshot.ls_score;
  link.quarantined <- snap.Snapshot.ls_quarantined;
  (* the grant table survived the swap, and so did its breach counter:
     re-baseline so old breaches are not double-counted *)
  (match Hypervisor.Hyp.grant_table_of t.hyp guest_vm with
  | Some table ->
      link.grant_quota_seen <- Hypervisor.Grant_table.quota_breaches table
  | None -> ());
  let stats = ref { rs_files = 0; rs_dropped = 0; rs_vmas = 0; rs_fasync = 0 } in
  if not link.quarantined then begin
    let restorer = Kernel.spawn_task t.kernel ~name:"cvd-restore" in
    Task.on_sigio restorer (fun () ->
        if Policy.input_target t.policy (Hypervisor.Vm.id guest_vm) then
          Channel.notify (Chan_pool.notify_channel link.pool));
    let restore_file (fr : Snapshot.file_rec) =
      let vfd = fr.Snapshot.fr_vfd and path = fr.Snapshot.fr_path in
      let admissible =
        (match sanitize t (Proto.Ropen { path }, 0, 0) with
        | Ok _ -> true
        | Error _ -> false)
        && vfd >= 1
        && vfd <= Proto.max_vfd
        && (not (Hashtbl.mem link.files vfd))
        && Hashtbl.length link.files < t.config.Config.max_open_vfds
        && List.mem path t.exports
      in
      if not admissible then false
      else
        match Devfs.lookup (Kernel.devfs t.kernel) path with
        | None -> false
        | Some dev ->
            if dev.Defs.exclusive && dev.Defs.open_count > 0 then false
            else begin
              let file_id = (Hypervisor.Vm.id guest_vm * 100_000) + vfd in
              let file =
                {
                  Defs.file_id;
                  dev;
                  opener = restorer;
                  nonblock = fr.Snapshot.fr_nonblock;
                  fasync_subscribers = [];
                  closed = false;
                }
              in
              dev.Defs.ops.Defs.fop_open restorer file;
              dev.Defs.open_count <- dev.Defs.open_count + 1;
              let vmas =
                List.filter_map
                  (fun (gva, len, pgoff) ->
                    match
                      sanitize t (Proto.Rmmap { vfd; gva; len; pgoff }, 0, 0)
                    with
                    | Ok _ ->
                        Some
                          {
                            Defs.vma_start = gva;
                            vma_len = len;
                            vma_file = file;
                            vma_pgoff = pgoff;
                          }
                    | Error _ -> None)
                  fr.Snapshot.fr_vmas
              in
              stats :=
                { !stats with rs_vmas = !stats.rs_vmas + List.length vmas };
              (* live mirror is newest-first *)
              Hashtbl.replace link.files vfd { file; vmas = List.rev vmas };
              if fr.Snapshot.fr_fasync then begin
                (try dev.Defs.ops.Defs.fop_fasync restorer file ~on:true
                 with _ -> ());
                file.Defs.fasync_subscribers <- [ restorer ];
                stats := { !stats with rs_fasync = !stats.rs_fasync + 1 }
              end;
              true
            end
    in
    try
      List.iter
        (fun fr ->
          (match fail_site with Some key -> fault_check t key | None -> ());
          if restore_file fr then
            stats := { !stats with rs_files = !stats.rs_files + 1 }
          else begin
            stats := { !stats with rs_dropped = !stats.rs_dropped + 1 };
            note_sanitize_rejection t
          end)
        snap.Snapshot.ls_files
    with Sim.Fault_inject.Injected _ as e ->
      (* crash mid-restore: unwind the partial session so nothing of
         it survives on this side — the caller decides where the whole
         session lands *)
      release_link_files t link;
      Chan_pool.iter_channels link.pool Channel.kill;
      detach_link t link;
      raise e
  end;
  (link, !stats)
