(** Machine assembly: a complete simulated host.

    Builds the Figure 1(c) topology — hypervisor, driver VM with the
    real drivers and assigned devices, guest VMs with CVD frontends —
    and also the paper's comparison configurations:
    - {b Native}: the application runs in the same kernel as the
      driver, no virtualization costs;
    - {b Device_assignment}: one VM owns the device directly (interrupt
      injection overhead, no sharing);
    - {b Paradice}: the full system, per the given {!Config}.

    Workloads only ever see a [Kernel.t] + device paths, so the same
    workload code runs unchanged against every configuration — the
    point of the device-file boundary. *)

open Oskit

type mode = Native | Device_assignment | Paradice

type guest = {
  vm : Hypervisor.Vm.t;
  kernel : Kernel.t;
  frontend : Cvd_front.t;
  mutable link : Cvd_back.guest_link; (* replaced on driver-VM reboot *)
  pci : Virt_pci.t;
}

(* Everything needed to replay an export onto a late-added guest. *)
type export_record = {
  path : string;
  cls : string;
  driver : string;
  exclusive : bool;
  kinds : Os_flavor.op_kind list;
  entries : Analyzer.Extract.t option;
  info : Device_info.t;
}

type gpu_attachment = {
  gpu : Devices.Gpu_hw.t;
  radeon : Devices.Radeon_drv.t;
  gpu_iommu : Memory.Iommu.t;
  mc_spn : int;
  mutable isolation : Hypervisor.Region.t option;
}

type t = {
  mode : mode;
  config : Config.t;
  engine : Sim.Engine.t;
  phys : Memory.Phys_mem.t;
  hyp : Hypervisor.Hyp.t;
  (* the driver VM is replaceable: a crash kills it, a reboot builds a
     fresh VM + kernel + backend in its place (§7.2) *)
  mutable driver_vm : Hypervisor.Vm.t;
  mutable driver_kernel : Kernel.t;
  mutable backend : Cvd_back.t;
  driver_mem_mib : int;
  driver_flavor : Os_flavor.t;
  mutable driver_generation : int;
  mutable last_killed_at : float;
  policy : Policy.t;
  mutable exports : export_record list;
  mutable guests : guest list;
  mutable gpu : gpu_attachment option;
  mutable mouse : Devices.Evdev.t option;
  mutable keyboard : Devices.Evdev.t option;
  mutable camera : Devices.V4l2_drv.t option;
  mutable audio : Devices.Pcm_drv.t option;
  mutable netmap : Devices.Netmap_drv.t option;
}

let mib = 1024 * 1024

(** Kill the current driver VM: the hypervisor rejects its memory
    operations from now on and the backend stops serving.  [poison]
    (default true) wakes everyone blocked on its channels; false models
    a silent death only deadlines or the watchdog detect.  Idempotent;
    safe from engine callbacks. *)
let kill_driver_vm ?(poison = true) t =
  if not (Cvd_back.is_killed t.backend) then begin
    t.last_killed_at <- Sim.Engine.now t.engine;
    Hypervisor.Hyp.kill_vm t.hyp t.driver_vm;
    Cvd_back.kill ~poison t.backend
  end

let last_killed_at t = t.last_killed_at
let driver_generation t = t.driver_generation

let create ?(mode = Paradice) ?(config = Config.default) ?(driver_mem_mib = 256)
    ?(flavor = Os_flavor.Linux_3_2_0) () =
  let engine = Sim.Engine.create () in
  let phys = Memory.Phys_mem.create () in
  let hyp = Hypervisor.Hyp.create phys in
  Hypervisor.Hyp.set_validation hyp config.Config.validate_grants;
  (* wire the span tracer to this machine's clock and hypervisor; the
     disabled sink makes both calls no-ops *)
  Obs.Trace.attach_clock config.Config.tracer (fun () -> Sim.Engine.now engine);
  Hypervisor.Hyp.set_tracer hyp config.Config.tracer;
  let driver_vm =
    Hypervisor.Hyp.create_vm hyp ~name:"driver-vm" ~kind:Hypervisor.Vm.Driver
      ~mem_bytes:(driver_mem_mib * mib)
  in
  let driver_kernel = Kernel.create ~engine ~vm:driver_vm ~flavor () in
  let policy = Policy.create () in
  let backend = Cvd_back.create ~kernel:driver_kernel ~hyp ~config ~policy in
  let t =
    {
      mode;
      config;
      engine;
      phys;
      hyp;
      driver_vm;
      driver_kernel;
      backend;
      driver_mem_mib;
      driver_flavor = flavor;
      driver_generation = 0;
      last_killed_at = nan;
      policy;
      exports = [];
      guests = [];
      gpu = None;
      mouse = None;
      keyboard = None;
      camera = None;
      audio = None;
      netmap = None;
    }
  in
  (* arm the mid-RPC crash site: when "cvd.crash" fires in a backend
     worker, the driver VM actually dies *)
  (match config.Config.injector with
  | Some inj ->
      Sim.Fault_inject.on_fire inj ~key:Cvd_back.site_crash (fun () ->
          kill_driver_vm t)
  | None -> ());
  t

let engine t = t.engine
let hyp t = t.hyp
let driver_kernel t = t.driver_kernel
let policy t = t.policy
let config t = t.config
let guests t = List.rev t.guests

(* Extra interrupt-delivery latency the mode imposes on assigned
   devices (interrupt injection under device assignment, §6.1.5). *)
let irq_extra t =
  match t.mode with
  | Native -> 0.
  | Device_assignment | Paradice -> t.config.Config.da_irq_extra_us

(* ------------------------------------------------------------------ *)
(* Guests                                                              *)
(* ------------------------------------------------------------------ *)

let install_export guest (e : export_record) =
  let (_ : Defs.device) =
    Cvd_front.export guest.frontend ~path:e.path ~cls:e.cls ~driver:e.driver
      ~exclusive:e.exclusive ?entries:e.entries ~kinds:e.kinds ()
  in
  Device_info.install e.info ~guest_kernel:guest.kernel ~pci_bus:guest.pci
    ~dev_path:e.path

let add_guest t ?(name = "guest") ?(mem_mib = 128)
    ?(flavor = Os_flavor.Linux_3_2_0) () =
  if t.mode <> Paradice then
    invalid_arg "Machine.add_guest: only the Paradice mode has guest VMs";
  let vm =
    Hypervisor.Hyp.create_vm t.hyp ~name ~kind:Hypervisor.Vm.Guest
      ~mem_bytes:(mem_mib * mib)
  in
  let kernel = Kernel.create ~engine:t.engine ~vm ~flavor () in
  let link = Cvd_back.connect t.backend ~guest_vm:vm in
  let frontend =
    Cvd_front.create ~kernel ~hyp:t.hyp ~guest_vm:vm ~pool:link.Cvd_back.pool
      ~config:t.config
  in
  let guest = { vm; kernel; frontend; link; pci = Virt_pci.create () } in
  t.guests <- guest :: t.guests;
  (* replay existing exports into the new guest *)
  List.iter (install_export guest) (List.rev t.exports);
  (* first guest becomes foreground *)
  if Policy.foreground t.policy = None then
    Policy.set_foreground t.policy (Hypervisor.Vm.id vm);
  guest

(** The kernel an application should run against in this mode: the
    guest's for Paradice, the device-owning kernel otherwise. *)
let app_kernel t =
  match (t.mode, t.guests) with
  | Paradice, g :: _ -> g.kernel
  | Paradice, [] -> invalid_arg "Machine.app_kernel: add a guest first"
  | (Native | Device_assignment), _ -> t.driver_kernel

(** Spawn an application task in [kernel], registered with the
    hypervisor so forwarded operations can name its address space. *)
let spawn_app t kernel ~name =
  let task = Kernel.spawn_task kernel ~name in
  Hypervisor.Hyp.register_process t.hyp (Kernel.vm kernel) ~pid:task.Defs.pid
    ~pt:task.Defs.pt;
  task

let register_export t e =
  Cvd_back.export t.backend e.path;
  t.exports <- e :: t.exports;
  List.iter (fun g -> install_export g e) t.guests

(* ------------------------------------------------------------------ *)
(* Driver-VM crash recovery (§7.2)                                     *)
(* ------------------------------------------------------------------ *)

(** Reboot a killed driver VM: after [Config.driver_reboot_us] of
    simulated boot time, a fresh VM/kernel/backend takes over, the
    driver re-probes its devices (each export reappears in the new
    devfs with no openers), and every guest is reconnected over a
    fresh channel pool.  Guests' previously-open virtual files stay
    stale — applications must reopen them — but new opens succeed
    immediately.  Process context. *)
let reboot_driver_vm t =
  if not (Cvd_back.is_killed t.backend) then
    invalid_arg "Machine.reboot_driver_vm: driver VM is not dead";
  if t.config.Config.driver_reboot_us > 0. then
    Sim.Engine.wait t.config.Config.driver_reboot_us;
  t.driver_generation <- t.driver_generation + 1;
  let old_devfs = Kernel.devfs t.driver_kernel in
  let vm =
    Hypervisor.Hyp.create_vm t.hyp
      ~name:(Printf.sprintf "driver-vm-%d" t.driver_generation)
      ~kind:Hypervisor.Vm.Driver
      ~mem_bytes:(t.driver_mem_mib * mib)
  in
  let kernel = Kernel.create ~engine:t.engine ~vm ~flavor:t.driver_flavor () in
  let backend = Cvd_back.create ~kernel ~hyp:t.hyp ~config:t.config ~policy:t.policy in
  t.driver_vm <- vm;
  t.driver_kernel <- kernel;
  t.backend <- backend;
  (* the rebooted driver re-probes its hardware: the same device models
     reappear in the fresh devfs, with every driver-side open gone *)
  List.iter
    (fun e ->
      (match Devfs.lookup old_devfs e.path with
      | Some dev ->
          dev.Defs.open_count <- 0;
          Devfs.register (Kernel.devfs kernel) dev
      | None -> ());
      Cvd_back.export backend e.path)
    (List.rev t.exports);
  (* reconnect every guest: fresh pool and workers, frontend faulted
     (in case it had not yet noticed a silent death) then reattached *)
  List.iter
    (fun g ->
      let link = Cvd_back.connect backend ~guest_vm:g.vm in
      g.link <- link;
      Cvd_front.fault_session g.frontend ~reason:"driver VM rebooted";
      Cvd_front.reattach g.frontend ~pool:link.Cvd_back.pool)
    t.guests

(* ------------------------------------------------------------------ *)
(* Device attachment                                                   *)
(* ------------------------------------------------------------------ *)

let map_bar vm ~spa ~pages ~perms =
  let base_gpa = Memory.Allocator.reserve_unused_range vm.Hypervisor.Vm.gpa_alloc pages in
  for i = 0 to pages - 1 do
    Memory.Ept.map (Hypervisor.Vm.ept vm)
      ~gpa:(base_gpa + (i * Memory.Addr.page_size))
      ~spa:(spa + (i * Memory.Addr.page_size))
      ~perms
  done;
  base_gpa

let attach_gpu t ?(vram_mib = 64) () =
  if t.gpu <> None then invalid_arg "Machine.attach_gpu: already attached";
  let vram_pages = vram_mib * mib / Memory.Addr.page_size in
  let gpu_iommu = Memory.Iommu.create ~name:"gpu-iommu" in
  let costs =
    { Devices.Gpu_hw.default_costs with
      Devices.Gpu_hw.irq_latency_us =
        Devices.Gpu_hw.default_costs.Devices.Gpu_hw.irq_latency_us +. irq_extra t }
  in
  let gpu = Devices.Gpu_hw.create t.engine t.phys ~iommu:gpu_iommu ~vram_pages ~costs () in
  let bar_gpa =
    map_bar t.driver_vm ~spa:(Devices.Gpu_hw.vram_base gpu) ~pages:vram_pages
      ~perms:Memory.Perm.rw
  in
  let mc_spn = Devices.Mem_ctrl.install_mmio (Devices.Gpu_hw.mem_ctrl gpu) t.phys in
  let mc_mmio_gpa =
    map_bar t.driver_vm ~spa:(Memory.Addr.of_pfn mc_spn) ~pages:1 ~perms:Memory.Perm.rw
  in
  let radeon =
    Devices.Radeon_drv.create ~kernel:t.driver_kernel ~gpu ~iommu:gpu_iommu ~bar_gpa
      ~mc_mmio_gpa
  in
  Devices.Radeon_drv.init_native radeon;
  let (_ : Defs.device) = Devices.Radeon_drv.register radeon in
  Devices.Gpu_hw.start gpu;
  let att = { gpu; radeon; gpu_iommu; mc_spn; isolation = None } in
  t.gpu <- Some att;
  register_export t
    {
      path = "/dev/dri/card0";
      cls = "gpu";
      driver = "radeon";
      exclusive = false;
      kinds =
        [ Os_flavor.Open; Os_flavor.Release; Os_flavor.Ioctl; Os_flavor.Mmap;
          Os_flavor.Fault; Os_flavor.Poll ];
      entries = Some (Analyzer.Extract.analyze Analyzer.Radeon_ir.driver_3_2_0);
      info =
        Device_info.gpu ~vendor:0x1002 ~device:0x6779 ~vram_bytes:(vram_mib * mib);
    };
  att

(** Device data isolation for the GPU (§4.2, §5.3): donate per-guest
    pools of driver RAM, create the protected regions, unmap the
    memory-controller MMIO page from the driver VM, and switch the
    Radeon driver into its isolation mode.  Call after every guest has
    been added. *)
let enable_gpu_data_isolation t ?(pool_pages_per_guest = 8192) () =
  let att =
    match t.gpu with
    | Some a -> a
    | None -> invalid_arg "enable_gpu_data_isolation: attach the GPU first"
  in
  if att.isolation <> None then invalid_arg "data isolation already enabled";
  if t.guests = [] then invalid_arg "enable_gpu_data_isolation: no guests";
  (* chronological guest order: the first guest added owns region 0 *)
  let owners = List.map (fun g -> g.vm) (List.rev t.guests) in
  (* the driver donates pool pages out of its own RAM (trusted init) *)
  let donate () =
    List.init pool_pages_per_guest (fun _ ->
        let gpa = Hypervisor.Vm.alloc_gpa_page t.driver_vm in
        match Memory.Ept.lookup (Hypervisor.Vm.ept t.driver_vm) ~gpa with
        | Some (spa, _) -> (gpa, spa)
        | None -> assert false)
  in
  let donations = List.map (fun _ -> donate ()) owners in
  let pool_spns =
    List.map (fun pages -> List.map (fun (_, spa) -> Memory.Addr.pfn spa) pages) donations
  in
  let mgr =
    Hypervisor.Region.create t.hyp ~driver_vm:t.driver_vm ~iommu:att.gpu_iommu
      ~owners ~pool_spns
      ~dev_mem:(Devices.Gpu_hw.vram_base att.gpu,
                Devices.Gpu_hw.vram_bytes att.gpu / Memory.Addr.page_size)
  in
  (* §5.3 change (iii): take the MC MMIO page away from the driver VM *)
  Hypervisor.Region.strip_driver_access mgr att.mc_spn;
  Devices.Radeon_drv.init_isolated att.radeon ~mgr
    ~pool_pages:(List.concat donations);
  att.isolation <- Some mgr;
  mgr

let attach_mouse t =
  let ev =
    Devices.Evdev.create t.driver_kernel ~name:"usbmouse"
      ~delivery_latency_us:(t.config.Config.input_delivery_us +. irq_extra t)
  in
  let (_ : Defs.device) = Devices.Evdev.register ev ~path:"/dev/input/event0" in
  t.mouse <- Some ev;
  register_export t
    {
      path = "/dev/input/event0";
      cls = "input";
      driver = "evdev/usbmouse";
      exclusive = false;
      kinds =
        [ Os_flavor.Open; Os_flavor.Release; Os_flavor.Read; Os_flavor.Poll;
          Os_flavor.Fasync ];
      entries = None;
      info = Device_info.input ~name:"Dell USB Mouse" ~product:0x3012;
    };
  ev

let attach_keyboard t =
  let ev =
    Devices.Evdev.create t.driver_kernel ~name:"usbkbd"
      ~delivery_latency_us:(t.config.Config.input_delivery_us +. irq_extra t)
  in
  let (_ : Defs.device) = Devices.Evdev.register ev ~path:"/dev/input/event1" in
  t.keyboard <- Some ev;
  register_export t
    {
      path = "/dev/input/event1";
      cls = "input";
      driver = "evdev/usbkbd";
      exclusive = false;
      kinds =
        [ Os_flavor.Open; Os_flavor.Release; Os_flavor.Read; Os_flavor.Poll;
          Os_flavor.Fasync ];
      entries = None;
      info = Device_info.input ~name:"Dell USB Keyboard" ~product:0x2105;
    };
  ev

let attach_camera t ?(fps = 29.5) () =
  let cam = Devices.V4l2_drv.create t.driver_kernel ~fps in
  let (_ : Defs.device) = Devices.V4l2_drv.register cam ~path:"/dev/video0" in
  Devices.V4l2_drv.start_sensor cam;
  t.camera <- Some cam;
  register_export t
    {
      path = "/dev/video0";
      cls = "camera";
      driver = "V4L2/UVC";
      exclusive = true;
      kinds =
        [ Os_flavor.Open; Os_flavor.Release; Os_flavor.Ioctl; Os_flavor.Mmap;
          Os_flavor.Fault; Os_flavor.Poll ];
      entries = None;
      info =
        Device_info.camera ~name:"Logitech HD Pro Webcam C920"
          ~resolutions:[ "1280x720"; "1600x896"; "1920x1080" ];
    };
  cam

let attach_audio t =
  let pcm = Devices.Pcm_drv.create t.driver_kernel in
  let (_ : Defs.device) = Devices.Pcm_drv.register pcm ~path:"/dev/snd/pcm0" in
  Devices.Pcm_drv.start_codec pcm;
  t.audio <- Some pcm;
  register_export t
    {
      path = "/dev/snd/pcm0";
      cls = "audio";
      driver = "PCM/snd-hda-intel";
      exclusive = false;
      kinds =
        [ Os_flavor.Open; Os_flavor.Release; Os_flavor.Write; Os_flavor.Ioctl;
          Os_flavor.Poll ];
      entries = None;
      info = Device_info.audio ~name:"Intel Panther Point HD Audio";
    };
  pcm

let attach_netmap t =
  let iommu = Memory.Iommu.create ~name:"e1000-iommu" in
  let nm = Devices.Netmap_drv.create t.driver_kernel ~iommu () in
  let (_ : Defs.device) = Devices.Netmap_drv.register nm ~path:"/dev/netmap" in
  Devices.Netmap_drv.start nm;
  t.netmap <- Some nm;
  register_export t
    {
      path = "/dev/netmap";
      cls = "net";
      driver = "netmap/e1000e";
      exclusive = true;
      kinds =
        [ Os_flavor.Open; Os_flavor.Release; Os_flavor.Ioctl; Os_flavor.Mmap;
          Os_flavor.Fault; Os_flavor.Poll ];
      entries = None;
      info = Device_info.ethernet ~name:"Intel Gigabit CT" ~num_slots:1024 ~buf_size:2048;
    };
  nm

(** A null device: its only ioctl returns immediately.  Backs the
    no-op file-operation latency microbenchmark of §6.1.1 and the
    per-strategy comparison of Table 3. *)
let null_ioctl = Oskit.Ioctl_num.io ~typ:'0' ~nr:0

let attach_null t =
  let ops =
    {
      Defs.default_ops with
      Defs.fop_kinds = [ Os_flavor.Open; Os_flavor.Release; Os_flavor.Ioctl ];
      fop_ioctl =
        (fun _task _file ~cmd ~arg:_ ->
          if cmd = null_ioctl then 0 else Errno.fail Errno.ENOTTY "null device");
    }
  in
  let dev = Defs.make_device ~path:"/dev/null0" ~cls:"test" ~driver:"null" ops in
  Devfs.register (Kernel.devfs t.driver_kernel) dev;
  register_export t
    {
      path = "/dev/null0";
      cls = "test";
      driver = "null";
      exclusive = false;
      kinds = [ Os_flavor.Open; Os_flavor.Release; Os_flavor.Ioctl ];
      entries = None;
      info = { Device_info.cls = "test"; sysfs_entries = []; pci = None };
    };
  dev
