(** Machine assembly: a complete simulated host.

    Builds the Figure 1(c) topology — hypervisor, driver VM with the
    real drivers and assigned devices, guest VMs with CVD frontends —
    and also the paper's comparison configurations:
    - {b Native}: the application runs in the same kernel as the
      driver, no virtualization costs;
    - {b Device_assignment}: one VM owns the device directly (interrupt
      injection overhead, no sharing);
    - {b Paradice}: the full system, per the given {!Config}.

    Workloads only ever see a [Kernel.t] + device paths, so the same
    workload code runs unchanged against every configuration — the
    point of the device-file boundary. *)

open Oskit

type mode = Native | Device_assignment | Paradice

type guest = {
  vm : Hypervisor.Vm.t;
  kernel : Kernel.t;
  frontend : Cvd_front.t;
  mutable link : Cvd_back.guest_link; (* replaced on driver-VM reboot *)
  pci : Virt_pci.t;
}

(* Everything needed to replay an export onto a late-added guest. *)
type export_record = {
  path : string;
  cls : string;
  driver : string;
  exclusive : bool;
  kinds : Os_flavor.op_kind list;
  entries : Analyzer.Extract.t option;
  info : Device_info.t;
}

type gpu_attachment = {
  gpu : Devices.Gpu_hw.t;
  radeon : Devices.Radeon_drv.t;
  gpu_iommu : Memory.Iommu.t;
  mc_spn : int;
  mutable isolation : Hypervisor.Region.t option;
}

(* A second live driver VM serving the same exports (session-migration
   target). *)
type replica = {
  rep_vm : Hypervisor.Vm.t;
  rep_kernel : Kernel.t;
  rep_backend : Cvd_back.t;
}

type t = {
  mode : mode;
  config : Config.t;
  engine : Sim.Engine.t;
  phys : Memory.Phys_mem.t;
  hyp : Hypervisor.Hyp.t;
  (* the driver VM is replaceable: a crash kills it, a reboot builds a
     fresh VM + kernel + backend in its place (§7.2) *)
  mutable driver_vm : Hypervisor.Vm.t;
  mutable driver_kernel : Kernel.t;
  mutable backend : Cvd_back.t;
  driver_mem_mib : int;
  driver_flavor : Os_flavor.t;
  mutable driver_generation : int;
  mutable last_killed_at : float;
  policy : Policy.t;
  mutable exports : export_record list;
  mutable guests : guest list;
  mutable replicas : replica list;
  mutable gpu : gpu_attachment option;
  mutable mouse : Devices.Evdev.t option;
  mutable keyboard : Devices.Evdev.t option;
  mutable camera : Devices.V4l2_drv.t option;
  mutable audio : Devices.Pcm_drv.t option;
  mutable netmap : Devices.Netmap_drv.t option;
}

let mib = 1024 * 1024

(** Kill the current driver VM: the hypervisor rejects its memory
    operations from now on and the backend stops serving.  [poison]
    (default true) wakes everyone blocked on its channels; false models
    a silent death only deadlines or the watchdog detect.  Idempotent;
    safe from engine callbacks. *)
let kill_driver_vm ?(poison = true) t =
  if not (Cvd_back.is_killed t.backend) then begin
    t.last_killed_at <- Sim.Engine.now t.engine;
    Hypervisor.Hyp.kill_vm t.hyp t.driver_vm;
    Cvd_back.kill ~poison t.backend
  end

let last_killed_at t = t.last_killed_at
let driver_generation t = t.driver_generation

let create ?(mode = Paradice) ?(config = Config.default) ?(driver_mem_mib = 256)
    ?(flavor = Os_flavor.Linux_3_2_0) () =
  let engine = Sim.Engine.create () in
  let phys = Memory.Phys_mem.create () in
  let hyp = Hypervisor.Hyp.create phys in
  Hypervisor.Hyp.set_validation hyp config.Config.validate_grants;
  (* wire the span tracer to this machine's clock and hypervisor; the
     disabled sink makes both calls no-ops *)
  Obs.Trace.attach_clock config.Config.tracer (fun () -> Sim.Engine.now engine);
  Hypervisor.Hyp.set_tracer hyp config.Config.tracer;
  let driver_vm =
    Hypervisor.Hyp.create_vm hyp ~name:"driver-vm" ~kind:Hypervisor.Vm.Driver
      ~mem_bytes:(driver_mem_mib * mib)
  in
  let driver_kernel = Kernel.create ~engine ~vm:driver_vm ~flavor () in
  let policy = Policy.create () in
  let backend = Cvd_back.create ~kernel:driver_kernel ~hyp ~config ~policy in
  let t =
    {
      mode;
      config;
      engine;
      phys;
      hyp;
      driver_vm;
      driver_kernel;
      backend;
      driver_mem_mib;
      driver_flavor = flavor;
      driver_generation = 0;
      last_killed_at = nan;
      policy;
      exports = [];
      guests = [];
      replicas = [];
      gpu = None;
      mouse = None;
      keyboard = None;
      camera = None;
      audio = None;
      netmap = None;
    }
  in
  (* arm the mid-RPC crash site: when "cvd.crash" fires in a backend
     worker, the driver VM actually dies *)
  (match config.Config.injector with
  | Some inj ->
      Sim.Fault_inject.on_fire inj ~key:Cvd_back.site_crash (fun () ->
          kill_driver_vm t)
  | None -> ());
  t

let engine t = t.engine
let hyp t = t.hyp
let driver_kernel t = t.driver_kernel
let policy t = t.policy
let config t = t.config
let guests t = List.rev t.guests

(* Extra interrupt-delivery latency the mode imposes on assigned
   devices (interrupt injection under device assignment, §6.1.5). *)
let irq_extra t =
  match t.mode with
  | Native -> 0.
  | Device_assignment | Paradice -> t.config.Config.da_irq_extra_us

(* ------------------------------------------------------------------ *)
(* Guests                                                              *)
(* ------------------------------------------------------------------ *)

let install_export guest (e : export_record) =
  let (_ : Defs.device) =
    Cvd_front.export guest.frontend ~path:e.path ~cls:e.cls ~driver:e.driver
      ~exclusive:e.exclusive ?entries:e.entries ~kinds:e.kinds ()
  in
  Device_info.install e.info ~guest_kernel:guest.kernel ~pci_bus:guest.pci
    ~dev_path:e.path

let add_guest t ?(name = "guest") ?(mem_mib = 128)
    ?(flavor = Os_flavor.Linux_3_2_0) () =
  if t.mode <> Paradice then
    invalid_arg "Machine.add_guest: only the Paradice mode has guest VMs";
  let vm =
    Hypervisor.Hyp.create_vm t.hyp ~name ~kind:Hypervisor.Vm.Guest
      ~mem_bytes:(mem_mib * mib)
  in
  let kernel = Kernel.create ~engine:t.engine ~vm ~flavor () in
  let link = Cvd_back.connect t.backend ~guest_vm:vm in
  let frontend =
    Cvd_front.create ~kernel ~hyp:t.hyp ~guest_vm:vm ~pool:link.Cvd_back.pool
      ~config:t.config
  in
  let guest = { vm; kernel; frontend; link; pci = Virt_pci.create () } in
  t.guests <- guest :: t.guests;
  (* replay existing exports into the new guest *)
  List.iter (install_export guest) (List.rev t.exports);
  (* first guest becomes foreground *)
  if Policy.foreground t.policy = None then
    Policy.set_foreground t.policy (Hypervisor.Vm.id vm);
  guest

(** The kernel an application should run against in this mode: the
    guest's for Paradice, the device-owning kernel otherwise. *)
let app_kernel t =
  match (t.mode, t.guests) with
  | Paradice, g :: _ -> g.kernel
  | Paradice, [] -> invalid_arg "Machine.app_kernel: add a guest first"
  | (Native | Device_assignment), _ -> t.driver_kernel

(** Spawn an application task in [kernel], registered with the
    hypervisor so forwarded operations can name its address space. *)
let spawn_app t kernel ~name =
  let task = Kernel.spawn_task kernel ~name in
  Hypervisor.Hyp.register_process t.hyp (Kernel.vm kernel) ~pid:task.Defs.pid
    ~pt:task.Defs.pt;
  task

let register_export t e =
  Cvd_back.export t.backend e.path;
  t.exports <- e :: t.exports;
  List.iter (fun g -> install_export g e) t.guests

(* ------------------------------------------------------------------ *)
(* Driver-VM crash recovery (§7.2)                                     *)
(* ------------------------------------------------------------------ *)

(** Reboot a killed driver VM: after [Config.driver_reboot_us] of
    simulated boot time, a fresh VM/kernel/backend takes over, the
    driver re-probes its devices (each export reappears in the new
    devfs with no openers), and every guest is reconnected over a
    fresh channel pool.  Guests' previously-open virtual files stay
    stale — applications must reopen them — but new opens succeed
    immediately.  Process context. *)
let reboot_driver_vm t =
  if not (Cvd_back.is_killed t.backend) then
    invalid_arg "Machine.reboot_driver_vm: driver VM is not dead";
  if t.config.Config.driver_reboot_us > 0. then
    Sim.Engine.wait t.config.Config.driver_reboot_us;
  t.driver_generation <- t.driver_generation + 1;
  let old_devfs = Kernel.devfs t.driver_kernel in
  let vm =
    Hypervisor.Hyp.create_vm t.hyp
      ~name:(Printf.sprintf "driver-vm-%d" t.driver_generation)
      ~kind:Hypervisor.Vm.Driver
      ~mem_bytes:(t.driver_mem_mib * mib)
  in
  let kernel = Kernel.create ~engine:t.engine ~vm ~flavor:t.driver_flavor () in
  let backend = Cvd_back.create ~kernel ~hyp:t.hyp ~config:t.config ~policy:t.policy in
  t.driver_vm <- vm;
  t.driver_kernel <- kernel;
  t.backend <- backend;
  (* the rebooted driver re-probes its hardware: the same device models
     reappear in the fresh devfs, with every driver-side open gone *)
  List.iter
    (fun e ->
      (match Devfs.lookup old_devfs e.path with
      | Some dev ->
          dev.Defs.open_count <- 0;
          Devfs.register (Kernel.devfs kernel) dev
      | None -> ());
      Cvd_back.export backend e.path)
    (List.rev t.exports);
  (* reconnect every guest: fresh pool and workers, frontend faulted
     (in case it had not yet noticed a silent death) then reattached *)
  List.iter
    (fun g ->
      let link = Cvd_back.connect backend ~guest_vm:g.vm in
      g.link <- link;
      Cvd_front.fault_session g.frontend ~reason:"driver VM rebooted";
      Cvd_front.reattach g.frontend ~pool:link.Cvd_back.pool)
    t.guests

(* ------------------------------------------------------------------ *)
(* Live driver-VM operations: hot upgrade and session migration        *)
(* ------------------------------------------------------------------ *)

let site_upgrade_crash_checkpoint = "upgrade.crash_checkpoint"
let site_upgrade_crash_restore = "upgrade.crash_restore"
let site_migrate_crash_checkpoint = "migrate.crash_checkpoint"
let site_migrate_crash_transfer = "migrate.crash_transfer"
let site_migrate_crash_restore = "migrate.crash_restore"

let fault_check t key =
  match t.config.Config.injector with
  | None -> ()
  | Some inj -> Sim.Fault_inject.check inj ~key

(* Boot a fresh driver VM serving the same exports.  Unlike the crash
   reboot, open counts are NOT reset: the incumbent's opens are still
   live, and the handoff closes them one side at a time. *)
let boot_driver ~name t =
  if t.config.Config.driver_reboot_us > 0. then
    Sim.Engine.wait t.config.Config.driver_reboot_us;
  let vm =
    Hypervisor.Hyp.create_vm t.hyp ~name ~kind:Hypervisor.Vm.Driver
      ~mem_bytes:(t.driver_mem_mib * mib)
  in
  let kernel = Kernel.create ~engine:t.engine ~vm ~flavor:t.driver_flavor () in
  let backend = Cvd_back.create ~kernel ~hyp:t.hyp ~config:t.config ~policy:t.policy in
  (* the replacement probes the same hardware: the same device records
     appear in its devfs *)
  let cur_devfs = Kernel.devfs t.driver_kernel in
  List.iter
    (fun e ->
      (match Devfs.lookup cur_devfs e.path with
      | Some dev -> Devfs.register (Kernel.devfs kernel) dev
      | None -> ());
      Cvd_back.export backend e.path)
    (List.rev t.exports);
  (vm, kernel, backend)

(* Drain the link's rings: wait (bounded by [Config.upgrade_drain_us])
   for in-flight descriptors to complete; stragglers are parked by
   channel retirement and replayed on the successor pool. *)
let drain_links t links =
  let now () = Sim.Engine.now t.engine in
  let deadline = now () +. t.config.Config.upgrade_drain_us in
  let busy () =
    List.exists (fun link -> not (Chan_pool.quiescent link.Cvd_back.pool)) links
  in
  while busy () && now () < deadline do
    Sim.Engine.wait 1.0
  done

(* Post-restore hypervisor reconciliation: prove every surviving
   cross-VM mapping and grant group against the snapshot, dropping
   anything the successor cannot re-derive.  Charged like the crash
   teardown: one hypercall per examined mapping plus the sweep. *)
let reconcile_hyp t ~guest_vm ~(snap : Snapshot.link_snap) =
  let kept, dropped = Hypervisor.Hyp.revalidate_vm_mappings t.hyp ~target:guest_vm in
  let revoked =
    match Hypervisor.Hyp.grant_table_of t.hyp guest_vm with
    | Some table -> Hypervisor.Grant_table.verify_snapshot table snap.Snapshot.ls_grants
    | None -> 0
  in
  Sim.Engine.wait
    (float_of_int (1 + kept + dropped + revoked) *. t.config.Config.hypercall_us);
  (kept, dropped, revoked)

type upgrade_stats = {
  up_generation : int;
  up_boot_us : float;  (* overlapped with live service, outside the blackout *)
  up_blackout_us : float;
  up_quiesce_us : float;
  up_checkpoint_us : float;
  up_swap_us : float;
  up_restore_us : float;
  up_resume_us : float;
  up_checkpoint_bytes : int;
  up_parked_ops : int;
  up_files_restored : int;
  up_files_dropped : int;
  up_vmas_restored : int;
  up_fasync_rearmed : int;
  up_mappings_kept : int;
  up_mappings_dropped : int;
  up_grants_revoked : int;
}

type upgrade_outcome =
  | Upgraded of upgrade_stats
  | Upgrade_degraded_reboot
      (* the incumbent was (or died while the replacement booted) dead:
         fell back to crash recovery *)
  | Upgrade_aborted of string
      (* crash before the point of no return: replacement discarded,
         incumbent kept serving *)
  | Upgrade_failed_dead of string
      (* crash after the incumbent was gone: guests fault as on a
         driver-VM crash; [reboot_driver_vm] recovers *)

let upgrade_driver_vm t =
  if Cvd_back.is_killed t.backend then begin
    reboot_driver_vm t;
    Upgrade_degraded_reboot
  end
  else begin
    let tracer = t.config.Config.tracer in
    let now () = Sim.Engine.now t.engine in
    let trace = Obs.Trace.mint_id tracer in
    (* overlapped boot: the successor boots while the incumbent keeps
       serving — none of this time is guest-visible *)
    let boot_began = now () in
    let boot_sp =
      Obs.Trace.span_begin tracer ~trace ~lane:Obs.Trace.Machine ~cat:"phase"
        ~name:"upgrade:boot" ()
    in
    let generation = t.driver_generation + 1 in
    let new_vm, new_kernel, new_backend =
      boot_driver ~name:(Printf.sprintf "driver-vm-%d" generation) t
    in
    Obs.Trace.span_end tracer boot_sp;
    let boot_us = now () -. boot_began in
    if Cvd_back.is_killed t.backend then begin
      (* the incumbent died under us: this is a crash now, not an
         upgrade — discard the replacement and recover *)
      Hypervisor.Hyp.kill_vm t.hyp new_vm;
      Cvd_back.kill new_backend;
      reboot_driver_vm t;
      Upgrade_degraded_reboot
    end
    else begin
      (* only sessions living on the incumbent move; guests migrated to
         a replica are untouched *)
      let guests =
        List.filter (fun g -> Cvd_back.has_link t.backend g.link) (List.rev t.guests)
      in
      let parked_before =
        List.fold_left (fun acc g -> acc + Cvd_front.ops_parked g.frontend) 0 guests
      in
      let blackout_began = now () in
      let op_sp =
        Obs.Trace.span_begin tracer ~trace ~lane:Obs.Trace.Machine ~cat:"op"
          ~name:"upgrade" ()
      in
      let stage name f =
        let sp =
          Obs.Trace.span_begin tracer ~trace ~lane:Obs.Trace.Machine ~cat:"stage"
            ~name ()
        in
        match f () with
        | v ->
            Obs.Trace.span_end tracer sp;
            v
        | exception e ->
            Obs.Trace.span_end ~status:"error" tracer sp;
            raise e
      in
      (* -- quiesce: frontends stop issuing, rings drain -- *)
      let quiesce_began = now () in
      stage "upgrade:quiesce" (fun () ->
          List.iter
            (fun g ->
              Cvd_front.suspend_watchdog g.frontend;
              Cvd_front.quiesce g.frontend)
            guests;
          drain_links t (List.map (fun g -> g.link) guests));
      let quiesce_us = now () -. quiesce_began in
      (* -- checkpoint: encode every session through the wire format -- *)
      let checkpoint_began = now () in
      match
        stage "upgrade:checkpoint" (fun () ->
            List.map
              (fun g ->
                fault_check t site_upgrade_crash_checkpoint;
                let blob =
                  Snapshot.encode (Cvd_back.checkpoint_link t.backend g.link)
                in
                Sim.Engine.wait t.config.Config.marshal_us;
                (g, blob))
              guests)
      with
      | exception Sim.Fault_inject.Injected key ->
          (* before the point of no return: the incumbent never stopped
             being correct — discard the replacement and resume on it *)
          Hypervisor.Hyp.kill_vm t.hyp new_vm;
          Cvd_back.kill new_backend;
          List.iter
            (fun g ->
              Cvd_front.resume g.frontend;
              Cvd_front.resume_watchdog g.frontend)
            guests;
          Obs.Trace.span_end ~status:"error:aborted" tracer op_sp;
          Upgrade_aborted key
      | blobs -> (
          let checkpoint_us = now () -. checkpoint_began in
          let checkpoint_bytes =
            List.fold_left (fun a (_, b) -> a + String.length b) 0 blobs
          in
          (* -- swap: point of no return.  Retire (not crash) the old
             transport, close the incumbent's opens, kill it, install
             the successor.  Deliberately not [kill_driver_vm]: a
             planned swap is not a crash and must not stamp
             [last_killed_at]. -- *)
          let swap_began = now () in
          stage "upgrade:swap" (fun () ->
              List.iter
                (fun (g, _) ->
                  Chan_pool.retire g.link.Cvd_back.pool;
                  Cvd_back.release_link_files t.backend g.link)
                blobs;
              Hypervisor.Hyp.kill_vm t.hyp t.driver_vm;
              Cvd_back.kill ~poison:false t.backend;
              t.driver_vm <- new_vm;
              t.driver_kernel <- new_kernel;
              t.backend <- new_backend;
              t.driver_generation <- generation;
              (* the kill_vm hypercall *)
              Sim.Engine.wait t.config.Config.hypercall_us);
          let swap_us = now () -. swap_began in
          (* -- restore: decode, re-validate, re-open on the successor -- *)
          let restore_began = now () in
          match
            stage "upgrade:restore" (fun () ->
                List.map
                  (fun (g, blob) ->
                    let snap = Snapshot.decode blob in
                    Sim.Engine.wait t.config.Config.marshal_us;
                    let link, rstats =
                      Cvd_back.restore_link new_backend ~snap ~guest_vm:g.vm
                        ~fail_site:site_upgrade_crash_restore ()
                    in
                    g.link <- link;
                    let kept, dropped, revoked =
                      reconcile_hyp t ~guest_vm:g.vm ~snap
                    in
                    (rstats, kept, dropped, revoked))
                  blobs)
          with
          | exception Sim.Fault_inject.Injected key ->
              (* after the point of no return: the successor died with
                 the incumbent already gone.  Degrade to crash
                 semantics: guests fault, files stale, reboot
                 recovers.  Spans must close before [fault_session]'s
                 [abort_open] sweep. *)
              Obs.Trace.span_end ~status:"error:failed" tracer op_sp;
              kill_driver_vm t;
              List.iter
                (fun g ->
                  Cvd_front.fault_session g.frontend
                    ~reason:("upgrade failed: " ^ key);
                  Cvd_front.resume_watchdog g.frontend)
                guests;
              Upgrade_failed_dead key
          | per_guest ->
              let restore_us = now () -. restore_began in
              (* -- resume: wake parked operations onto the successor -- *)
              let resume_began = now () in
              stage "upgrade:resume" (fun () ->
                  List.iter
                    (fun g ->
                      Cvd_front.resume ~pool:g.link.Cvd_back.pool g.frontend;
                      Cvd_front.resume_watchdog g.frontend)
                    guests);
              Obs.Trace.span_end tracer op_sp;
              let resume_us = now () -. resume_began in
              let parked_after =
                List.fold_left
                  (fun acc g -> acc + Cvd_front.ops_parked g.frontend)
                  0 guests
              in
              let sum f = List.fold_left (fun a x -> a + f x) 0 per_guest in
              Upgraded
                {
                  up_generation = generation;
                  up_boot_us = boot_us;
                  up_blackout_us = now () -. blackout_began;
                  up_quiesce_us = quiesce_us;
                  up_checkpoint_us = checkpoint_us;
                  up_swap_us = swap_us;
                  up_restore_us = restore_us;
                  up_resume_us = resume_us;
                  up_checkpoint_bytes = checkpoint_bytes;
                  up_parked_ops = parked_after - parked_before;
                  up_files_restored =
                    sum (fun (r, _, _, _) -> r.Cvd_back.rs_files);
                  up_files_dropped =
                    sum (fun (r, _, _, _) -> r.Cvd_back.rs_dropped);
                  up_vmas_restored = sum (fun (r, _, _, _) -> r.Cvd_back.rs_vmas);
                  up_fasync_rearmed =
                    sum (fun (r, _, _, _) -> r.Cvd_back.rs_fasync);
                  up_mappings_kept = sum (fun (_, k, _, _) -> k);
                  up_mappings_dropped = sum (fun (_, _, d, _) -> d);
                  up_grants_revoked = sum (fun (_, _, _, r) -> r);
                })
    end
  end

(* ------------------------------------------------------------------ *)
(* Session migration between live driver VMs                           *)
(* ------------------------------------------------------------------ *)

let replicas t = List.rev t.replicas

(** Boot a second live driver VM serving the same exports — a
    migration target.  Process context (boot takes
    [Config.driver_reboot_us]). *)
let spawn_driver_replica ?name t =
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "driver-vm-replica-%d" (List.length t.replicas + 1)
  in
  let rep_vm, rep_kernel, rep_backend = boot_driver ~name t in
  let rep = { rep_vm; rep_kernel; rep_backend } in
  t.replicas <- rep :: t.replicas;
  rep

(* Which live backend currently serves this link. *)
let backend_of_link t link =
  let all = t.backend :: List.map (fun r -> r.rep_backend) t.replicas in
  List.find_opt
    (fun b -> (not (Cvd_back.is_killed b)) && Cvd_back.has_link b link)
    all

type migrate_stats = {
  mg_blackout_us : float;
  mg_checkpoint_bytes : int;
  mg_files_restored : int;
  mg_files_dropped : int;
  mg_vmas_restored : int;
  mg_fasync_rearmed : int;
  mg_mappings_kept : int;
  mg_mappings_dropped : int;
  mg_grants_revoked : int;
}

type migrate_outcome =
  | Migrated of migrate_stats
  | Migrate_aborted of string
      (* crash before cutover: session untouched on the source *)
  | Migrate_failed_back of string * migrate_stats
      (* destination crashed mid-restore: the same snapshot was
         restored back onto the source — the session lands whole on
         exactly one side *)

let migrate_guest t g ~dst =
  let src =
    match backend_of_link t g.link with
    | Some b -> b
    | None -> invalid_arg "Machine.migrate_guest: guest has no live link"
  in
  if src == dst then invalid_arg "Machine.migrate_guest: session already there";
  if Cvd_back.is_killed dst then
    invalid_arg "Machine.migrate_guest: destination driver VM is dead";
  let tracer = t.config.Config.tracer in
  let now () = Sim.Engine.now t.engine in
  let trace = Obs.Trace.mint_id tracer in
  let blackout_began = now () in
  let op_sp =
    Obs.Trace.span_begin tracer ~trace ~lane:Obs.Trace.Machine ~cat:"op"
      ~name:"migrate" ()
  in
  let stage name f =
    let sp =
      Obs.Trace.span_begin tracer ~trace ~lane:Obs.Trace.Machine ~cat:"stage" ~name
        ()
    in
    match f () with
    | v ->
        Obs.Trace.span_end tracer sp;
        v
    | exception e ->
        Obs.Trace.span_end ~status:"error" tracer sp;
        raise e
  in
  stage "migrate:quiesce" (fun () ->
      Cvd_front.suspend_watchdog g.frontend;
      Cvd_front.quiesce g.frontend;
      drain_links t [ g.link ]);
  let soft_abort key =
    (* the source never stopped holding the session: just resume *)
    Cvd_front.resume g.frontend;
    Cvd_front.resume_watchdog g.frontend;
    Obs.Trace.span_end ~status:"error:aborted" tracer op_sp;
    Migrate_aborted key
  in
  match
    stage "migrate:checkpoint" (fun () ->
        fault_check t site_migrate_crash_checkpoint;
        let blob = Snapshot.encode (Cvd_back.checkpoint_link src g.link) in
        Sim.Engine.wait t.config.Config.marshal_us;
        blob)
  with
  | exception Sim.Fault_inject.Injected key -> soft_abort key
  | blob -> (
      match
        stage "migrate:transfer" (fun () ->
            fault_check t site_migrate_crash_transfer;
            let snap = Snapshot.decode blob in
            Sim.Engine.wait t.config.Config.marshal_us;
            snap)
      with
      | exception Sim.Fault_inject.Injected key -> soft_abort key
      | snap -> (
          let old_link = g.link in
          (* cutover: from here the source's copy is gone *)
          stage "migrate:cutover" (fun () ->
              Chan_pool.retire old_link.Cvd_back.pool;
              Cvd_back.release_link_files src old_link;
              Cvd_back.detach_link src old_link);
          let finish link (rstats : Cvd_back.restore_stats) =
            g.link <- link;
            let kept, dropped, revoked =
              stage "migrate:reconcile" (fun () ->
                  reconcile_hyp t ~guest_vm:g.vm ~snap)
            in
            stage "migrate:resume" (fun () ->
                Cvd_front.resume ~pool:link.Cvd_back.pool g.frontend;
                Cvd_front.resume_watchdog g.frontend);
            {
              mg_blackout_us = now () -. blackout_began;
              mg_checkpoint_bytes = String.length blob;
              mg_files_restored = rstats.Cvd_back.rs_files;
              mg_files_dropped = rstats.Cvd_back.rs_dropped;
              mg_vmas_restored = rstats.Cvd_back.rs_vmas;
              mg_fasync_rearmed = rstats.Cvd_back.rs_fasync;
              mg_mappings_kept = kept;
              mg_mappings_dropped = dropped;
              mg_grants_revoked = revoked;
            }
          in
          match
            stage "migrate:restore" (fun () ->
                Cvd_back.restore_link dst ~snap ~guest_vm:g.vm
                  ~fail_site:site_migrate_crash_restore ())
          with
          | link, rstats ->
              let stats = finish link rstats in
              Obs.Trace.span_end tracer op_sp;
              Migrated stats
          | exception Sim.Fault_inject.Injected key ->
              (* the destination crashed mid-restore and already tore
                 its partial copy down; restore the same snapshot back
                 onto the source so the session lands whole on exactly
                 one side *)
              let link, rstats =
                stage "migrate:restore_back" (fun () ->
                    Cvd_back.restore_link src ~snap ~guest_vm:g.vm ())
              in
              let stats = finish link rstats in
              Obs.Trace.span_end ~status:"error:failed_back" tracer op_sp;
              Migrate_failed_back (key, stats)))

(* ------------------------------------------------------------------ *)
(* Device attachment                                                   *)
(* ------------------------------------------------------------------ *)

let map_bar vm ~spa ~pages ~perms =
  let base_gpa = Memory.Allocator.reserve_unused_range vm.Hypervisor.Vm.gpa_alloc pages in
  for i = 0 to pages - 1 do
    Memory.Ept.map (Hypervisor.Vm.ept vm)
      ~gpa:(base_gpa + (i * Memory.Addr.page_size))
      ~spa:(spa + (i * Memory.Addr.page_size))
      ~perms
  done;
  base_gpa

let attach_gpu t ?(vram_mib = 64) () =
  if t.gpu <> None then invalid_arg "Machine.attach_gpu: already attached";
  let vram_pages = vram_mib * mib / Memory.Addr.page_size in
  let gpu_iommu = Memory.Iommu.create ~name:"gpu-iommu" in
  let costs =
    { Devices.Gpu_hw.default_costs with
      Devices.Gpu_hw.irq_latency_us =
        Devices.Gpu_hw.default_costs.Devices.Gpu_hw.irq_latency_us +. irq_extra t }
  in
  let gpu = Devices.Gpu_hw.create t.engine t.phys ~iommu:gpu_iommu ~vram_pages ~costs () in
  let bar_gpa =
    map_bar t.driver_vm ~spa:(Devices.Gpu_hw.vram_base gpu) ~pages:vram_pages
      ~perms:Memory.Perm.rw
  in
  let mc_spn = Devices.Mem_ctrl.install_mmio (Devices.Gpu_hw.mem_ctrl gpu) t.phys in
  let mc_mmio_gpa =
    map_bar t.driver_vm ~spa:(Memory.Addr.of_pfn mc_spn) ~pages:1 ~perms:Memory.Perm.rw
  in
  let radeon =
    Devices.Radeon_drv.create ~kernel:t.driver_kernel ~gpu ~iommu:gpu_iommu ~bar_gpa
      ~mc_mmio_gpa
  in
  Devices.Radeon_drv.init_native radeon;
  let (_ : Defs.device) = Devices.Radeon_drv.register radeon in
  Devices.Gpu_hw.start gpu;
  let att = { gpu; radeon; gpu_iommu; mc_spn; isolation = None } in
  t.gpu <- Some att;
  register_export t
    {
      path = "/dev/dri/card0";
      cls = "gpu";
      driver = "radeon";
      exclusive = false;
      kinds =
        [ Os_flavor.Open; Os_flavor.Release; Os_flavor.Ioctl; Os_flavor.Mmap;
          Os_flavor.Fault; Os_flavor.Poll ];
      entries = Some (Analyzer.Extract.analyze Analyzer.Radeon_ir.driver_3_2_0);
      info =
        Device_info.gpu ~vendor:0x1002 ~device:0x6779 ~vram_bytes:(vram_mib * mib);
    };
  att

(** Device data isolation for the GPU (§4.2, §5.3): donate per-guest
    pools of driver RAM, create the protected regions, unmap the
    memory-controller MMIO page from the driver VM, and switch the
    Radeon driver into its isolation mode.  Call after every guest has
    been added. *)
let enable_gpu_data_isolation t ?(pool_pages_per_guest = 8192) () =
  let att =
    match t.gpu with
    | Some a -> a
    | None -> invalid_arg "enable_gpu_data_isolation: attach the GPU first"
  in
  if att.isolation <> None then invalid_arg "data isolation already enabled";
  if t.guests = [] then invalid_arg "enable_gpu_data_isolation: no guests";
  (* chronological guest order: the first guest added owns region 0 *)
  let owners = List.map (fun g -> g.vm) (List.rev t.guests) in
  (* the driver donates pool pages out of its own RAM (trusted init) *)
  let donate () =
    List.init pool_pages_per_guest (fun _ ->
        let gpa = Hypervisor.Vm.alloc_gpa_page t.driver_vm in
        match Memory.Ept.lookup (Hypervisor.Vm.ept t.driver_vm) ~gpa with
        | Some (spa, _) -> (gpa, spa)
        | None -> assert false)
  in
  let donations = List.map (fun _ -> donate ()) owners in
  let pool_spns =
    List.map (fun pages -> List.map (fun (_, spa) -> Memory.Addr.pfn spa) pages) donations
  in
  let mgr =
    Hypervisor.Region.create t.hyp ~driver_vm:t.driver_vm ~iommu:att.gpu_iommu
      ~owners ~pool_spns
      ~dev_mem:(Devices.Gpu_hw.vram_base att.gpu,
                Devices.Gpu_hw.vram_bytes att.gpu / Memory.Addr.page_size)
  in
  (* §5.3 change (iii): take the MC MMIO page away from the driver VM *)
  Hypervisor.Region.strip_driver_access mgr att.mc_spn;
  Devices.Radeon_drv.init_isolated att.radeon ~mgr
    ~pool_pages:(List.concat donations);
  att.isolation <- Some mgr;
  mgr

let attach_mouse t =
  let ev =
    Devices.Evdev.create t.driver_kernel ~name:"usbmouse"
      ~delivery_latency_us:(t.config.Config.input_delivery_us +. irq_extra t)
  in
  let (_ : Defs.device) = Devices.Evdev.register ev ~path:"/dev/input/event0" in
  t.mouse <- Some ev;
  register_export t
    {
      path = "/dev/input/event0";
      cls = "input";
      driver = "evdev/usbmouse";
      exclusive = false;
      kinds =
        [ Os_flavor.Open; Os_flavor.Release; Os_flavor.Read; Os_flavor.Ioctl;
          Os_flavor.Poll; Os_flavor.Fasync ];
      entries = None;
      info = Device_info.input ~name:"Dell USB Mouse" ~product:0x3012;
    };
  ev

let attach_keyboard t =
  let ev =
    Devices.Evdev.create t.driver_kernel ~name:"usbkbd"
      ~delivery_latency_us:(t.config.Config.input_delivery_us +. irq_extra t)
  in
  let (_ : Defs.device) = Devices.Evdev.register ev ~path:"/dev/input/event1" in
  t.keyboard <- Some ev;
  register_export t
    {
      path = "/dev/input/event1";
      cls = "input";
      driver = "evdev/usbkbd";
      exclusive = false;
      kinds =
        [ Os_flavor.Open; Os_flavor.Release; Os_flavor.Read; Os_flavor.Ioctl;
          Os_flavor.Poll; Os_flavor.Fasync ];
      entries = None;
      info = Device_info.input ~name:"Dell USB Keyboard" ~product:0x2105;
    };
  ev

let attach_camera t ?(fps = 29.5) () =
  let cam = Devices.V4l2_drv.create t.driver_kernel ~fps in
  let (_ : Defs.device) = Devices.V4l2_drv.register cam ~path:"/dev/video0" in
  Devices.V4l2_drv.start_sensor cam;
  t.camera <- Some cam;
  register_export t
    {
      path = "/dev/video0";
      cls = "camera";
      driver = "V4L2/UVC";
      exclusive = true;
      kinds =
        [ Os_flavor.Open; Os_flavor.Release; Os_flavor.Ioctl; Os_flavor.Mmap;
          Os_flavor.Fault; Os_flavor.Poll ];
      entries = None;
      info =
        Device_info.camera ~name:"Logitech HD Pro Webcam C920"
          ~resolutions:[ "1280x720"; "1600x896"; "1920x1080" ];
    };
  cam

let attach_audio t =
  let pcm = Devices.Pcm_drv.create t.driver_kernel in
  let (_ : Defs.device) = Devices.Pcm_drv.register pcm ~path:"/dev/snd/pcm0" in
  Devices.Pcm_drv.start_codec pcm;
  t.audio <- Some pcm;
  register_export t
    {
      path = "/dev/snd/pcm0";
      cls = "audio";
      driver = "PCM/snd-hda-intel";
      exclusive = false;
      kinds =
        [ Os_flavor.Open; Os_flavor.Release; Os_flavor.Write; Os_flavor.Ioctl;
          Os_flavor.Poll ];
      entries = None;
      info = Device_info.audio ~name:"Intel Panther Point HD Audio";
    };
  pcm

let attach_netmap t =
  let iommu = Memory.Iommu.create ~name:"e1000-iommu" in
  let nm = Devices.Netmap_drv.create t.driver_kernel ~iommu () in
  let (_ : Defs.device) = Devices.Netmap_drv.register nm ~path:"/dev/netmap" in
  Devices.Netmap_drv.start nm;
  t.netmap <- Some nm;
  register_export t
    {
      path = "/dev/netmap";
      cls = "net";
      driver = "netmap/e1000e";
      exclusive = true;
      kinds =
        [ Os_flavor.Open; Os_flavor.Release; Os_flavor.Ioctl; Os_flavor.Mmap;
          Os_flavor.Fault; Os_flavor.Poll ];
      entries = None;
      info = Device_info.ethernet ~name:"Intel Gigabit CT" ~num_slots:1024 ~buf_size:2048;
    };
  nm

(** A null device: its only ioctl returns immediately.  Backs the
    no-op file-operation latency microbenchmark of §6.1.1 and the
    per-strategy comparison of Table 3. *)
let null_ioctl = Oskit.Ioctl_num.io ~typ:'0' ~nr:0

let attach_null t =
  let ops =
    {
      Defs.default_ops with
      Defs.fop_kinds = [ Os_flavor.Open; Os_flavor.Release; Os_flavor.Ioctl ];
      fop_ioctl =
        (fun _task _file ~cmd ~arg:_ ->
          if cmd = null_ioctl then 0 else Errno.fail Errno.ENOTTY "null device");
    }
  in
  let dev = Defs.make_device ~path:"/dev/null0" ~cls:"test" ~driver:"null" ops in
  Devfs.register (Kernel.devfs t.driver_kernel) dev;
  register_export t
    {
      path = "/dev/null0";
      cls = "test";
      driver = "null";
      exclusive = false;
      kinds = [ Os_flavor.Open; Os_flavor.Release; Os_flavor.Ioctl ];
      entries = None;
      info = { Device_info.cls = "test"; sysfs_entries = []; pci = None };
    };
  dev
