(** Generated per-ioctl argument sanitizers: {!Analyzer.Facts.check}
    records interpreted in front of the backend device handlers, plus
    the fact-driven hostile generators for the per-class fuzz
    campaigns.  Rejections hit [sanitize.<class>.<handler>.<check>] in
    {!Wire_spec.Coverage}; accepted analyzed commands hit
    [handler.<class>.<handler>]. *)

type verdict =
  | Pass
  | Reject of { handler : string; violated : string }
      (** handler name and the violated check's label *)

val jit_loop_bound : int

(** [check ~dev_class ~cmd ~arg ~limits ~read] re-reads the depth-1
    argument struct via [read] and evaluates the generated checks.
    Unknown commands and unreadable argument pointers [Pass] (the
    driver keeps its own ENOTTY/EFAULT semantics). *)
val check :
  dev_class:string ->
  cmd:int ->
  arg:int64 ->
  limits:Wire_spec.limits ->
  read:(addr:int -> len:int -> bytes) ->
  verdict

module Fuzz : sig
  type mem = {
    alloc : int -> int;
    write32 : addr:int -> int -> unit;
    write64 : addr:int -> int64 -> unit;
  }

  (** Analyzed commands of a class. *)
  val cmds : dev_class:string -> int list

  (** Build a well-formed argument struct in guest memory. *)
  val seed : rand:(int -> int) -> mem -> dev_class:string -> cmd:int -> int64

  (** A value violating a generated check, when one exists. *)
  val violation_value :
    rand:(int -> int) -> limits:Wire_spec.limits -> Analyzer.Facts.check -> int option

  (** Seed a well-formed struct, then inject one fact violation (or a
      wild pointer). *)
  val mutate :
    rand:(int -> int) ->
    limits:Wire_spec.limits ->
    mem ->
    dev_class:string ->
    cmd:int ->
    int64
end
