(** CVD transport: a shared-memory descriptor ring plus inter-VM
    signalling (§5.1), in interrupt or polling mode, with doorbell
    coalescing, per-receiver cold-path accounting, sequence-numbered
    at-least-once retries and signal-collapsing notifications. *)

type t

val create :
  Sim.Engine.t ->
  config:Config.t ->
  phys:Memory.Phys_mem.t ->
  guest_vm:Hypervisor.Vm.t ->
  driver_vm:Hypervisor.Vm.t ->
  t

(** Ring depth: how many RPCs may be in flight on this channel. *)
val ring_slots : t -> int

(** Dispatch weight for {!Chan_pool}: outstanding frontend operations,
    heavily penalised while the backend worker is busy in the driver. *)
val load : t -> int

(** Declare the channel dead (driver-VM crash).  [poison] (default
    true) wakes every blocked party so it observes the death; false
    models a silent crash detected only by deadlines/watchdog.
    Idempotent; safe from engine callbacks. *)
val kill : ?poison:bool -> t -> unit

val is_dead : t -> bool

exception Retired
(** Raised out of {!rpc} by a channel taken down by {!retire}: the
    transport was {e replaced} (planned handoff), not lost — the
    caller should replay the exchange on the successor pool. *)

(** Retire the channel (planned driver-VM handoff): poison-kill it,
    but make stragglers inside {!rpc} raise {!Retired} instead of EIO
    so the session survives.  Idempotent. *)
val retire : t -> unit

(** No operation in flight on either side of the ring. *)
val quiescent : t -> bool

(** Frontend: one request/response exchange over a ring slot; blocks
    while all [Config.ring_slots] slots are in flight.  [timeout_us]
    overrides [Config.rpc_timeout_us] (0 = wait forever).  Raises EIO
    when the channel dies, ETIMEDOUT when the deadline expires after
    [Config.rpc_retries] resends (at-least-once: only retry idempotent
    operations under a deadline).  Responses carrying a stale sequence
    number (late answers to timed-out attempts) are discarded. *)
val rpc : ?timeout_us:float -> t -> bytes -> bytes

(** Hostile-frontend injection (adversarial tests): write raw bytes
    into a ring slot and mark it request-ready, bypassing the RPC
    state machine — what a compromised guest kernel with the shared
    region mapped writable can do.  The backend's response to the slot
    is left unread. *)
val inject_raw : t -> slot:int -> bytes -> unit

(** Backend: block until a descriptor is ready and claim it ([None] =
    channel dead, the worker should exit).  One doorbell wakeup drains
    many descriptors: successive calls re-scan the ring head before
    sleeping. *)
val next_request : t -> (int * bytes) option

(** Complete the descriptor claimed from [slot] (dropped on a dead
    channel); the response interrupt coalesces with any already in
    flight. *)
val respond : t -> slot:int -> bytes -> unit

(** Backend: asynchronous notification (collapses while pending, like
    SIGIO).  Safe from engine callbacks. *)
val notify : t -> unit

(** Frontend: block for a notification; returns the event counter, or
    [None] once the channel is dead. *)
val next_notification : t -> int option

(** Fault-site keys understood by this module (armed on the
    [Config.injector]); all act at doorbell-leg granularity. *)
val site_drop_req : string

val site_drop_resp : string
val site_corrupt_req : string
val site_delay_req : string

type stats = {
  legs : int;
  cold_legs : int;
  rpcs : int;
  max_in_flight : int;  (** high-water mark of concurrent RPCs *)
  notifications : int;
  timeouts : int;
  retries : int;
  stale_responses : int;  (** late answers to timed-out attempts, discarded *)
}

val stats : t -> stats
