(** CVD transport: a shared memory page plus inter-VM signalling
    (§5.1), in interrupt or polling mode, with per-receiver cold-path
    accounting and signal-collapsing notifications. *)

type t

(* The record is abstract except for the mutex Chan_pool coordinates on. *)
val create :
  Sim.Engine.t ->
  config:Config.t ->
  phys:Memory.Phys_mem.t ->
  guest_vm:Hypervisor.Vm.t ->
  driver_vm:Hypervisor.Vm.t ->
  t

val rpc_mutex : t -> Sim.Semaphore.t

(** Declare the channel dead (driver-VM crash).  [poison] (default
    true) wakes every blocked party so it observes the death; false
    models a silent crash detected only by deadlines/watchdog.
    Idempotent; safe from engine callbacks. *)
val kill : ?poison:bool -> t -> unit

val is_dead : t -> bool

(** Frontend: one request/response exchange.  [rpc_locked] requires
    the caller to hold {!rpc_mutex} (see {!Chan_pool}); [rpc] takes it
    itself.  [timeout_us] overrides [Config.rpc_timeout_us] (0 = wait
    forever).  Raises EIO when the channel dies, ETIMEDOUT when the
    deadline expires after [Config.rpc_retries] resends (at-least-once:
    only retry idempotent operations under a deadline). *)
val rpc_locked : ?timeout_us:float -> t -> bytes -> bytes

val rpc : ?timeout_us:float -> t -> bytes -> bytes

(** Backend: block for the next request ([None] = channel dead, the
    worker should exit) / complete it (dropped on a dead channel). *)
val next_request : t -> bytes option

val respond : t -> bytes -> unit

(** Backend: asynchronous notification (collapses while pending, like
    SIGIO).  Safe from engine callbacks. *)
val notify : t -> unit

(** Frontend: block for a notification; returns the event counter, or
    [None] once the channel is dead. *)
val next_notification : t -> int option

(** Fault-site keys understood by this module (armed on the
    [Config.injector]). *)
val site_drop_req : string

val site_drop_resp : string
val site_corrupt_req : string
val site_delay_req : string

type stats = {
  legs : int;
  cold_legs : int;
  rpcs : int;
  notifications : int;
  rejected_busy : int;
  timeouts : int;
  retries : int;
}

val stats : t -> stats
