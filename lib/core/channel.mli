(** CVD transport: a shared-memory descriptor ring plus inter-VM
    signalling (§5.1), in interrupt or polling mode, with doorbell
    coalescing, per-receiver cold-path accounting, sequence-numbered
    at-least-once retries and signal-collapsing notifications. *)

type t

(** [uid] names this ring's trace counter series
    (["ring<uid>.occupancy"]); the backend derives it from the guest
    VM id and channel index so series names are deterministic per
    machine.  Omitted (tests), a domain-local fallback is used. *)
val create :
  ?uid:int ->
  Sim.Engine.t ->
  config:Config.t ->
  phys:Memory.Phys_mem.t ->
  guest_vm:Hypervisor.Vm.t ->
  driver_vm:Hypervisor.Vm.t ->
  t

(** Ring depth: how many RPCs may be in flight on this channel. *)
val ring_slots : t -> int

(** Effective signalling mode, honouring any live override. *)
val comm_mode : t -> Config.comm_mode

(** Hybrid (NAPI-style) notification currently enabled, honouring any
    live override: interrupt to wake, bounded ring polling while work
    keeps arriving, doorbells suppressed meanwhile. *)
val hybrid_enabled : t -> bool

(** Live mode switch: override the config's signalling mode for this
    channel from now on (in-flight legs keep the latency they were
    scheduled with). *)
val set_comm_mode : t -> Config.comm_mode -> unit

(** Live hybrid switch: enable/disable the poll windows from now on.
    Disabling lets a backend mid-window finish that window but opens no
    new one; enabling grants a fresh dry-poll budget immediately. *)
val set_hybrid : t -> bool -> unit

(** Dispatch weight for {!Chan_pool}: outstanding frontend operations,
    heavily penalised while the backend worker is busy in the driver. *)
val load : t -> int

(** Declare the channel dead (driver-VM crash).  [poison] (default
    true) wakes every blocked party so it observes the death; false
    models a silent crash detected only by deadlines/watchdog.
    Idempotent; safe from engine callbacks. *)
val kill : ?poison:bool -> t -> unit

val is_dead : t -> bool

exception Retired
(** Raised out of {!rpc} by a channel taken down by {!retire}: the
    transport was {e replaced} (planned handoff), not lost — the
    caller should replay the exchange on the successor pool. *)

(** Retire the channel (planned driver-VM handoff): poison-kill it,
    but make stragglers inside {!rpc} raise {!Retired} instead of EIO
    so the session survives.  Idempotent. *)
val retire : t -> unit

(** No operation in flight on either side of the ring. *)
val quiescent : t -> bool

(** Frontend: one request/response exchange over a ring slot; blocks
    while all [Config.ring_slots] slots are in flight.  [timeout_us]
    overrides [Config.rpc_timeout_us] (0 = wait forever).  Raises EIO
    when the channel dies, ETIMEDOUT when the deadline expires after
    [Config.rpc_retries] resends (at-least-once: only retry idempotent
    operations under a deadline).  Responses carrying a stale sequence
    number (late answers to timed-out attempts) are discarded. *)
val rpc : ?timeout_us:float -> t -> bytes -> bytes

(** Hostile-frontend injection (adversarial tests): write raw bytes
    into a ring slot and mark it request-ready, bypassing the RPC
    state machine — what a compromised guest kernel with the shared
    region mapped writable can do.  The backend's response to the slot
    is left unread. *)
val inject_raw : t -> slot:int -> bytes -> unit

(** Backend: block until a descriptor is ready and claim it ([None] =
    channel dead, the worker should exit).  One doorbell wakeup drains
    many descriptors: successive calls re-scan the ring head before
    sleeping. *)
val next_request : t -> (int * bytes) option

(** Complete the descriptor claimed from [slot] (dropped on a dead
    channel); the response interrupt coalesces with any already in
    flight (and is skipped entirely, in favour of a polling-cost
    handoff, while the frontend waiter is poll-watching).  A respond on
    a slot that is not in service — double-complete, never claimed, or
    a guest rewriting the state word — is a counted protocol violation
    and raises EIO instead of corrupting ring accounting. *)
val respond : t -> slot:int -> bytes -> unit

(** Backend: asynchronous notification (collapses while pending, like
    SIGIO).  The shared event counter is a u32 and wraps at 2^32.
    Safe from engine callbacks. *)
val notify : t -> unit

(** Frontend: block for a notification; returns the number of
    notifications raised since the last observation (the wrap-safe
    delta of the shared u32 counter), or [None] once the channel is
    dead. *)
val next_notification : t -> int option

(** Test hook: preset the raw u32 notification counter (and the
    frontend's last-observed value) so wrap behaviour at the 2^32
    boundary can be exercised directly. *)
val preset_notify_counter : t -> int -> unit

(** Fault-site keys understood by this module (armed on the
    [Config.injector]); all act at doorbell-leg granularity. *)
val site_drop_req : string

val site_drop_resp : string
val site_corrupt_req : string
val site_delay_req : string

type stats = {
  legs : int;
  cold_legs : int;
  rpcs : int;
  max_in_flight : int;  (** high-water mark of concurrent RPCs *)
  notifications : int;
  timeouts : int;
  retries : int;
  stale_responses : int;  (** late answers to timed-out attempts, discarded *)
  protocol_violations : int;  (** responds on slots not in service *)
  req_poll_pickups : int;  (** hybrid request handoffs at polling cost *)
  resp_poll_deliveries : int;  (** hybrid response handoffs at polling cost *)
}

val stats : t -> stats
