(** CVD wire protocol: file operations and results serialised into the
    shared page (§5.1). *)

type request =
  | Ropen of { path : string }
  | Rrelease of { vfd : int }
  | Rread of { vfd : int; buf : int; len : int }
  | Rwrite of { vfd : int; buf : int; len : int }
  | Rioctl of { vfd : int; cmd : int; arg : int64 }
  | Rmmap of { vfd : int; gva : int; len : int; pgoff : int }
  | Rfault of { vfd : int; gva : int }
  | Rmunmap of { vfd : int; gva : int; len : int }
  | Rpoll of { vfd : int; want_in : bool; want_out : bool; timeout_us : float }
  | Rfasync of { vfd : int; on : bool }
  | Rnoop (** the §6.1.1 latency microbenchmark *)

type response =
  | Rok of int
  | Rerr of int (** positive errno code *)
  | Rpoll_reply of { pollin : bool; pollout : bool }

val slot_size : int

(** Transport sequence number, stamped into a descriptor by the
    channel at publish time and echoed back in the response so a late
    answer to a timed-out attempt can never be paired with a resend. *)
val seq_off : int

val set_seq : bytes -> int -> unit
val get_seq : bytes -> int

(** Trace id of the forwarded operation ({!Obs.Trace.mint_id}),
    stamped by the frontend next to the sequence number so transport,
    backend and hypervisor spans attribute to it; 0 = untraced. *)
val trace_off : int

val set_trace : bytes -> int -> unit
val get_trace : bytes -> int

exception Malformed of string

val encode_request : grant_ref:int -> pid:int -> request -> bytes

(** Returns [(request, grant_ref, pid)]; raises {!Malformed} on
    garbage (a malicious frontend cannot crash the backend). *)
val decode_request : bytes -> request * int * int

val encode_response : response -> bytes
val decode_response : bytes -> response
val op_kind_of_request : request -> Oskit.Os_flavor.op_kind
val request_name : request -> string
