(** CVD wire protocol: file operations and results serialised into the
    shared page (§5.1).

    Every message form is declared exactly once as a {!Wire_spec}
    field spec ({!req_specs} / {!resp_specs}); the encoder, the
    bounds-checked decoder, the sanitizer and the {!Fuzz} generator /
    grammar-aware mutator are all derived from that single table. *)

type request =
  | Ropen of { path : string }
  | Rrelease of { vfd : int }
  | Rread of { vfd : int; buf : int; len : int }
  | Rwrite of { vfd : int; buf : int; len : int }
  | Rioctl of { vfd : int; cmd : int; arg : int64 }
  | Rmmap of { vfd : int; gva : int; len : int; pgoff : int }
  | Rfault of { vfd : int; gva : int }
  | Rmunmap of { vfd : int; gva : int; len : int }
  | Rpoll of { vfd : int; want_in : bool; want_out : bool; timeout_us : float }
  | Rfasync of { vfd : int; on : bool }
  | Rnoop (** the §6.1.1 latency microbenchmark *)
  | Rbatch of request list
      (** io_uring-style multi-op descriptor: one ring slot / one
          doorbell carries a length-prefixed batch of small file ops.
          Only fixed-size data-path operations (release / read / write /
          ioctl / poll / fasync / noop) are batchable; batches do not
          nest. *)

type response =
  | Rok of int
  | Rerr of int (** positive errno code *)
  | Rpoll_reply of { pollin : bool; pollout : bool }
  | Rbatch_reply of response list
      (** one sub-response per sub-op, in submission order *)

val slot_size : int

(** Most sub-ops one {!Rbatch} descriptor can carry (wire-format
    bound: the batch payload stays below the trace word). *)
val max_batch_ops : int

(** Transport sequence number, stamped into a descriptor by the
    channel at publish time and echoed back in the response so a late
    answer to a timed-out attempt can never be paired with a resend. *)
val seq_off : int

val set_seq : bytes -> int -> unit
val get_seq : bytes -> int

(** Trace id of the forwarded operation ({!Obs.Trace.mint_id}),
    stamped by the frontend next to the sequence number so transport,
    backend and hypervisor spans attribute to it; 0 = untraced. *)
val trace_off : int

val set_trace : bytes -> int -> unit
val get_trace : bytes -> int

exception Malformed of string

(** Raised by {!encode_request} when a field value has no wire
    representation — e.g. an [Ropen] path longer than the 256-byte
    wire cap: the encoder rejects exactly what the decoder would,
    instead of blitting past the path slot. *)
exception Oversized of { field : string; length : int; limit : int }

(** The spec table the codecs are derived from: one
    {!Wire_spec.spec} per singleton request opcode (the structural
    [Rbatch] form, opcode 12, is the count @12 / length-prefixed
    record grammar over the [batchable] entries). *)
val req_specs : request Wire_spec.spec list

(** Response specs (tags 1-3; the [Rbatch_reply] record grammar is
    tag 4). *)
val resp_specs : response Wire_spec.spec list

val encode_request : grant_ref:int -> pid:int -> request -> bytes

(** Returns [(request, grant_ref, pid)]; raises {!Malformed} on
    garbage (a malicious frontend cannot crash the backend). *)
val decode_request : bytes -> request * int * int

(** A field that failed sanitization. *)
type violation = Wire_spec.violation = { field : string; detail : string }

(** Post-decode, pre-dispatch sanitization (§4, §7.1): bound every
    field of a decoded request.  Returns the request (poll timeouts
    clamped into [[0, poll_timeout_cap_us]]) or the offending field.
    Oversized reads/writes, non-devfs or NUL-bearing open paths,
    out-of-range vfd/grant_ref/pid and wrapping mmap ranges are all
    rejected here so nothing downstream sees them. *)
val validate :
  max_transfer_bytes:int ->
  poll_timeout_cap_us:float ->
  grant_capacity:int ->
  request * int * int ->
  (request, violation) result

(** Same sanitizer with the limits pre-packed (the backend builds one
    {!Wire_spec.limits} from its config and reuses it per request). *)
val validate_limits :
  limits:Wire_spec.limits -> request * int * int -> (request, violation) result

(** Largest mmap/munmap range {!validate} accepts (device BARs exceed
    the copy-transfer cap but must still be bounded). *)
val max_mmap_bytes : int

(** Largest virtual descriptor number {!validate} accepts. *)
val max_vfd : int

(** The devfs-path rule {!validate} applies to [Ropen] — exposed so
    checkpoint restore can re-vet snapshotted paths through the exact
    same predicate as live requests. *)
val valid_path : string -> bool

val encode_response : response -> bytes
val decode_response : bytes -> response
val op_kind_of_request : request -> Oskit.Os_flavor.op_kind
val request_name : request -> string

(** Spec-derived fuzzing: seeded random requests that satisfy every
    sanitizer rule ({!Fuzz.generate}), and a grammar-aware mutator
    that drives exactly one element of an encoded descriptor hostile —
    a header word, a batch count, a record length or tag, or one
    declared field under its own spec ({!Fuzz.mutate}). *)
module Fuzz : sig
  (** Bounds used when generating valid skeletons. *)
  val default_limits : Wire_spec.limits

  val generate : ?limits:Wire_spec.limits -> Sim.Rng.t -> request
  val mutate : Sim.Rng.t -> bytes -> unit

  (** [descriptor rng ~grant_ref ~pid] is an encoded slot: a valid
      skeleton, mutated 7 times out of 8. *)
  val descriptor :
    ?limits:Wire_spec.limits -> Sim.Rng.t -> grant_ref:int -> pid:int -> bytes
end
