(** The CVD frontend (§3.1, §5.1): creates virtual device files in the
    guest whose handlers declare the operation's legitimate memory
    operations in the grant table (§4.1) and forward it over the
    channel pool. *)

type t

type session = Healthy | Faulted

type fault_stats = {
  sessions_faulted : int;
  grants_revoked : int;
  mappings_torn : int;
  heartbeat_misses : int;
  last_faulted_at : float;  (** sim time of the last fault; nan if none *)
  last_teardown_us : float;  (** revoke+teardown duration; nan if none *)
}

(** Also spawns the notification dispatcher, and — when
    [Config.heartbeat_interval_us > 0] — the watchdog that pings the
    backend and faults the session after
    [Config.heartbeat_miss_limit] consecutive misses. *)
val create :
  kernel:Oskit.Kernel.t ->
  hyp:Hypervisor.Hyp.t ->
  guest_vm:Hypervisor.Vm.t ->
  pool:Chan_pool.t ->
  config:Config.t ->
  t

(** (operations forwarded, JIT slice evaluations, transport stats) *)
val stats : t -> int * int * Chan_pool.stats

val session : t -> session
val fault_stats : t -> fault_stats

(** Declare the driver VM dead: stale all open virtual files (their
    operations fail ENODEV), revoke every grant, tear down every
    hypervisor-installed mapping into this guest.  Idempotent; must run
    in process context (it charges teardown hypercalls). *)
val fault_session : t -> reason:string -> unit

(** Re-establish a faulted session over a fresh pool (driver-VM
    reboot, §7.2).  Stale files must be reopened; new opens work
    immediately. *)
val reattach : t -> pool:Chan_pool.t -> unit

(** {1 Planned handoff (hot upgrade / session migration)} *)

(** Stop issuing onto the transport: new operations park until
    {!resume}.  Invisible to callers except as latency. *)
val quiesce : t -> unit

val is_paused : t -> bool

(** Wake parked operations.  [pool] installs the successor transport
    (and its notification dispatcher); omitting it resumes on the
    current pool — the soft-rollback of an aborted handoff. *)
val resume : ?pool:Chan_pool.t -> t -> unit

(** Operations that hit a retiring channel and were replayed on the
    successor pool. *)
val ops_parked : t -> int

(** Where a guest file stands with respect to its backend session. *)
type file_status =
  | Live
  | Stale_retryable of string
      (** the session died under it but is re-established: operations
          fail ENODEV, a fresh [open] succeeds — close and reopen *)
  | Stale_dead of string  (** stale and the session is still down *)
  | Unknown

val file_status : t -> Oskit.Defs.file -> file_status

(** Stop the heartbeat watchdog (lets [Engine.run] drain). *)
val stop_watchdog : t -> unit

(** Suspend heartbeat pings for a planned quiesce: no misses accrue,
    however long the handoff takes. *)
val suspend_watchdog : t -> unit

val resume_watchdog : t -> unit

(** Forward an io_uring-style multi-op batch ({!Proto.Rbatch}): every
    request rides one ring slot / one doorbell and executes
    sequentially on the backend.  Returns one response per sub-op in
    submission order; a failing sub-op carries its errno in its reply
    slot without aborting the batch.  [ops] declares the grants the
    sub-ops may touch (one grant_ref for the whole batch).  Raises as
    {!Oskit.Errno.Unix_error} when the batch itself is rejected
    (malformed, sanitization, transport death). *)
val forward_batch :
  t ->
  Oskit.Defs.task ->
  ops:Hypervisor.Grant_table.op list ->
  Proto.request list ->
  Proto.response list

(** Convenience over {!forward_batch}: issue [cmds] — pointer-free
    [(cmd, arg)] ioctls such as netmap txsync or the no-op probe — on
    one open guest file as a single multi-op descriptor.  Returns the
    per-sub-op int results in submission order; the first failing
    sub-op raises its errno. *)
val batch_ioctl :
  t -> Oskit.Defs.task -> Oskit.Defs.file -> (int * int64) list -> int list

(** Create the virtual device file for an exported device.  [entries]
    is the analyzer's table for ioctl-heavy classes; [kinds] must all
    be supported by the guest kernel's flavor. *)
val export :
  t ->
  path:string ->
  cls:string ->
  driver:string ->
  ?exclusive:bool ->
  ?entries:Analyzer.Extract.t ->
  kinds:Oskit.Os_flavor.op_kind list ->
  unit ->
  Oskit.Defs.device
