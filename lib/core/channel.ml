(** CVD transport: shared memory page + inter-VM signalling (§5.1).

    The frontend puts the serialised file operation in the shared page
    and signals the backend; the response travels the same way back.
    Two signalling modes exist:
    - {b interrupts}: each leg is an inter-VM interrupt (~17 us);
    - {b polling}: both sides spin on the page for up to 200 us before
      sleeping, so a hot handoff costs under a microsecond.

    A channel whose last exchange is older than the cold threshold
    pays a per-leg surcharge (idle worker wakeup — see {!Config}).

    The page layout: request slot at 0, response slot at 1024, a
    notification counter at 2048 (the backend's asynchronous messages
    to the frontend, §5.1). *)

type t = {
  engine : Sim.Engine.t;
  config : Config.t;
  page : Hypervisor.Shared_page.t;
  front_view : Hypervisor.Shared_page.view;
  back_view : Hypervisor.Shared_page.view;
  req_rx : unit Sim.Mailbox.t; (* backend wakes here on request legs *)
  resp_rx : unit Sim.Mailbox.t; (* frontend wakes here on response legs *)
  notify_rx : unit Sim.Mailbox.t; (* frontend async-notification wakeups *)
  rpc_mutex : Sim.Semaphore.t; (* one exchange in the page at a time *)
  (* Cold-path tracking is per receiving endpoint: a leg towards a
     worker that has been idle pays the cold surcharge (idle wakeup,
     scheduler, cache refill), while a recently-active receiver is
     hot.  This is what makes back-to-back no-ops cost ~35us while an
     isolated input event costs hundreds (§6.1.1 vs §6.1.5). *)
  mutable front_last_wake : float;
  mutable back_last_wake : float;
  mutable legs : int;
  mutable cold_legs : int;
  mutable rpcs : int;
  mutable notifications : int;
  mutable pending_notify : bool; (* signal collapsing: one interrupt pending *)
  mutable rejected_busy : int;
  (* A killed channel (driver-VM crash) never completes an exchange
     again: senders fail fast with EIO, blocked receivers are woken so
     they can observe the death instead of hanging forever. *)
  mutable dead : bool;
  mutable timeouts : int;
  mutable retries : int;
}

let req_off = 0
let resp_off = 1024
let notify_off = 2048

let create engine ~config ~phys ~guest_vm ~driver_vm =
  let page = Hypervisor.Shared_page.allocate phys in
  let (_ : int) =
    Hypervisor.Shared_page.map_into page guest_vm ~perms:Memory.Perm.rw
  in
  let (_ : int) =
    Hypervisor.Shared_page.map_into page driver_vm ~perms:Memory.Perm.rw
  in
  {
    engine;
    config;
    page;
    front_view = Hypervisor.Shared_page.view_of page guest_vm;
    back_view = Hypervisor.Shared_page.view_of page driver_vm;
    req_rx = Sim.Mailbox.create engine;
    resp_rx = Sim.Mailbox.create engine;
    notify_rx = Sim.Mailbox.create engine;
    rpc_mutex = Sim.Semaphore.create 1;
    front_last_wake = neg_infinity;
    back_last_wake = neg_infinity;
    legs = 0;
    cold_legs = 0;
    rpcs = 0;
    notifications = 0;
    pending_notify = false;
    rejected_busy = 0;
    dead = false;
    timeouts = 0;
    retries = 0;
  }

let is_dead t = t.dead

(** Declare the channel dead (driver-VM crash).  With [poison] (the
    default) every blocked party — the frontend waiting for a response,
    backend workers waiting for requests, the notification dispatcher —
    is woken exactly once so it can observe [dead] and bail out.  The
    rpc mutex guarantees at most one in-flight response waiter, so one
    wakeup per mailbox suffices.  [poison:false] models a silent crash:
    nobody is woken and detection is left to RPC deadlines or the
    frontend watchdog. *)
let kill ?(poison = true) t =
  if not t.dead then begin
    t.dead <- true;
    if poison then begin
      Sim.Mailbox.send t.resp_rx ();
      Sim.Mailbox.send t.req_rx ();
      Sim.Mailbox.send t.notify_rx ()
    end
  end

(* Deterministic fault sites (driven by [Config.injector]).  Keys are
   stable strings so tests and experiments can arm them by name. *)
let site_drop_req = "chan.drop_req"
let site_drop_resp = "chan.drop_resp"
let site_corrupt_req = "chan.corrupt_req"
let site_delay_req = "chan.delay_req"

let fault_fires t key =
  match t.config.Config.injector with
  | None -> false
  | Some inj -> Sim.Fault_inject.fires inj ~key

(* One signalling leg towards [rx] on [receiver] side: transfer
   latency, plus the cold surcharge when that receiver has been idle. *)
let leg t ~receiver rx =
  let now = Sim.Engine.now t.engine in
  let last =
    match receiver with `Front -> t.front_last_wake | `Back -> t.back_last_wake
  in
  let cold = now -. last > t.config.Config.cold_threshold_us in
  (match receiver with
  | `Front -> t.front_last_wake <- now
  | `Back -> t.back_last_wake <- now);
  t.legs <- t.legs + 1;
  if cold then t.cold_legs <- t.cold_legs + 1;
  let delay =
    Config.leg_latency t.config +. (if cold then Config.cold_extra t.config else 0.)
  in
  Sim.Engine.at t.engine ~delay (fun () -> Sim.Mailbox.send rx ())

let marshal t = Sim.Engine.wait t.config.Config.marshal_us

let rpc_mutex t = t.rpc_mutex

let fail_dead () = Oskit.Errno.fail Oskit.Errno.EIO "channel dead: driver VM down"

(* One request leg, with the injected transport faults applied:
   corruption garbles the opcode byte in the shared page (the backend
   must reject, not crash), delay adds latency, drop loses the leg
   entirely (only a deadline can recover). *)
let send_request t (req_bytes : bytes) =
  marshal t;
  let wire =
    if fault_fires t site_corrupt_req then begin
      let b = Bytes.copy req_bytes in
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
      b
    end
    else req_bytes
  in
  t.front_view.Hypervisor.Shared_page.write ~offset:req_off wire;
  if fault_fires t site_delay_req then
    Sim.Engine.wait t.config.Config.fault_delay_us;
  if not (fault_fires t site_drop_req) then leg t ~receiver:`Back t.req_rx

(** Frontend: send a request and wait for the response.  The caller
    must hold [rpc_mutex] ({!Chan_pool} manages this).

    With a deadline ([timeout_us] override, else [Config.rpc_timeout_us];
    0 = wait forever) an unanswered request is {e resent} up to
    [Config.rpc_retries] times before the exchange fails with
    ETIMEDOUT.  Retries give at-least-once semantics: a request whose
    response (rather than the request itself) was lost executes twice,
    so callers must only retry idempotent operations — which is why
    deadlines are opt-in.  A channel killed mid-exchange fails with EIO
    instead: the transport itself is gone. *)
let rpc_locked ?timeout_us t (req_bytes : bytes) : bytes =
  if t.dead then fail_dead ();
  t.rpcs <- t.rpcs + 1;
  let deadline =
    match timeout_us with Some d -> d | None -> t.config.Config.rpc_timeout_us
  in
  let rec attempt tries_left =
    send_request t req_bytes;
    if t.dead then fail_dead ();
    let got =
      if deadline > 0. then Sim.Mailbox.recv_timeout t.resp_rx ~timeout:deadline
      else Some (Sim.Mailbox.recv t.resp_rx)
    in
    if t.dead then fail_dead ();
    match got with
    | Some () ->
        marshal t;
        t.front_view.Hypervisor.Shared_page.read ~offset:resp_off
          ~len:Proto.slot_size
    | None ->
        t.timeouts <- t.timeouts + 1;
        if tries_left > 0 then begin
          t.retries <- t.retries + 1;
          attempt (tries_left - 1)
        end
        else
          Oskit.Errno.fail Oskit.Errno.ETIMEDOUT
            "rpc deadline exceeded after retries"
  in
  attempt (max 0 t.config.Config.rpc_retries)

(** Standalone variant taking the mutex itself (tests, single-channel
    setups). *)
let rpc ?timeout_us t req_bytes =
  Sim.Semaphore.with_resource t.rpc_mutex (fun () ->
      rpc_locked ?timeout_us t req_bytes)

(** Backend: block for the next request; [None] once the channel is
    dead (the worker should exit). *)
let next_request t : bytes option =
  if t.dead then None
  else
    let () = Sim.Mailbox.recv t.req_rx in
    if t.dead then None
    else begin
      marshal t;
      Some
        (t.back_view.Hypervisor.Shared_page.read ~offset:req_off
           ~len:Proto.slot_size)
    end

(** Backend: complete the pending request.  Dropped silently on a dead
    channel (a crashed driver VM answers nobody) or when the
    response-drop fault fires. *)
let respond t (resp_bytes : bytes) =
  if not t.dead then begin
    marshal t;
    t.back_view.Hypervisor.Shared_page.write ~offset:resp_off resp_bytes;
    if not (fault_fires t site_drop_resp) then leg t ~receiver:`Front t.resp_rx
  end

(** Backend: asynchronous notification towards the frontend (§5.1's
    "message to the frontend, e.g., when the keyboard is pressed").
    Runs in callback context (no waits): marshal cost is folded into
    the leg. *)
let notify t =
  if not t.dead then begin
    t.notifications <- t.notifications + 1;
    let counter = t.back_view.Hypervisor.Shared_page.read_u32 ~offset:notify_off in
    t.back_view.Hypervisor.Shared_page.write_u32 ~offset:notify_off (counter + 1);
    (* Signals collapse: while a notification interrupt is pending, new
       events only bump the counter (like SIGIO, §2.1). *)
    if not t.pending_notify then begin
      t.pending_notify <- true;
      leg t ~receiver:`Front t.notify_rx
    end
  end

(** Frontend: block for the next notification; [None] once the channel
    is dead (the dispatcher should exit). *)
let next_notification t =
  if t.dead then None
  else
    let () = Sim.Mailbox.recv t.notify_rx in
    if t.dead then None
    else begin
      t.pending_notify <- false;
      Some (t.front_view.Hypervisor.Shared_page.read_u32 ~offset:notify_off)
    end

type stats = {
  legs : int;
  cold_legs : int;
  rpcs : int;
  notifications : int;
  rejected_busy : int;
  timeouts : int;
  retries : int;
}

let stats (t : t) : stats =
  {
    legs = t.legs;
    cold_legs = t.cold_legs;
    rpcs = t.rpcs;
    notifications = t.notifications;
    rejected_busy = t.rejected_busy;
    timeouts = t.timeouts;
    retries = t.retries;
  }
