(** CVD transport: shared memory descriptor ring + inter-VM signalling
    (§5.1).

    The frontend serialises file operations into ring slots in the
    shared region and rings a doorbell; the backend drains every ready
    descriptor per wakeup and publishes responses the same way back.
    Two signalling modes exist:
    - {b interrupts}: each doorbell leg is an inter-VM interrupt (~17 us);
    - {b polling}: both sides spin on the ring head, so a handoff costs
      under a microsecond.

    {b Ring layout.}  The shared region is a control page followed by
    slot pages:
    - control page: one u32 state word per slot
      (free / req-ready / in-service / resp-ready / delivered) at
      [4*i], and the asynchronous notification counter at [512];
    - slot [i]'s 1 KiB descriptor at [page_size + i * slot_size];
      the response overwrites the request in place.

    Up to [Config.ring_slots] RPCs may be in flight per channel; a
    publisher with no free slot blocks until one completes.

    {b Doorbell coalescing.}  A doorbell leg is sent only when the
    receiver might actually be asleep: while the backend is awake and
    draining ([back_active]) — or an earlier request doorbell is still
    in flight ([req_irq_pending]) — newly published descriptors are
    picked up by the backend's next head re-scan at no signalling
    cost.  Responses coalesce symmetrically on [resp_irq_pending]: one
    interrupt delivers every response marked ready since the leg was
    raised.  This is the adaptive-polling extension of the hot-poll
    path: a busy receiver polls the ring head between operations and
    never takes an interrupt; only an idle (possibly cold) receiver
    needs one.

    {b Sequencing.}  Every publish stamps a fresh sequence number into
    the descriptor ({!Proto.seq_off}); the backend echoes the sequence
    it drained into its response.  A waiter discards a response whose
    sequence is not its current attempt's (a late answer to a
    timed-out attempt — at-least-once retries make these legitimate)
    and republishes its own request, which the stale response
    clobbered.

    A channel whose receiving endpoint has been idle longer than the
    cold threshold pays a per-leg surcharge (idle worker wakeup — see
    {!Config}). *)

type t = {
  engine : Sim.Engine.t;
  config : Config.t;
  region : Hypervisor.Shared_page.t;
  front_view : Hypervisor.Shared_page.view;
  back_view : Hypervisor.Shared_page.view;
  slots : int; (* ring depth *)
  req_rx : unit Sim.Mailbox.t; (* backend wakes here on request doorbells *)
  resp_box : unit Sim.Mailbox.t array; (* per-slot response delivery *)
  notify_rx : unit Sim.Mailbox.t; (* frontend async-notification wakeups *)
  slot_sem : Sim.Semaphore.t; (* free ring slots *)
  free_slots : int Queue.t;
  mutable next_seq : int;
  service_seq : int array; (* backend: seq drained per slot, echoed back *)
  service_active : bool array; (* backend: slot claimed and not yet answered.
                                   Backend-private — unlike the control-page
                                   state word, a guest cannot rewrite it — so
                                   it is the authority on whether a respond
                                   pairs with an outstanding claim. *)
  (* doorbell-coalescing state *)
  mutable back_active : bool; (* backend awake and draining the ring *)
  mutable req_irq_pending : bool; (* a request doorbell leg is in flight *)
  mutable resp_irq_pending : bool; (* a response doorbell leg is in flight *)
  (* hybrid (NAPI-style) notification state.  While a side is inside
     its bounded poll window the other side skips the interrupt leg and
     hands work over at polling cost instead. *)
  mutable back_polling : bool; (* backend inside its hybrid poll window *)
  mutable req_poll_pending : bool; (* a request poll pickup is scheduled *)
  mutable resp_poll_pending : bool; (* a response poll delivery is scheduled *)
  mutable back_poll_budget_left : float; (* dry-poll budget this episode *)
  (* runtime overrides for live mode switching: [None] defers to the
     immutable [config], so defaults leave behaviour bit-identical *)
  mutable mode_override : Config.comm_mode option;
  mutable hybrid_override : bool option;
  (* Cold-path tracking is per receiving endpoint: a leg towards a
     worker that has been idle pays the cold surcharge (idle wakeup,
     scheduler, cache refill), while a recently-active receiver is
     hot.  This is what makes back-to-back no-ops cost ~35us while an
     isolated input event costs hundreds (§6.1.1 vs §6.1.5). *)
  mutable front_last_wake : float;
  mutable back_last_wake : float;
  mutable scan_cursor : int; (* backend drain fairness *)
  mutable legs : int;
  mutable cold_legs : int;
  mutable rpcs : int;
  mutable in_flight : int; (* frontend ops claimed on this ring *)
  mutable max_in_flight : int;
  mutable in_service : int; (* descriptors drained, not yet answered *)
  mutable notifications : int;
  mutable pending_notify : bool; (* signal collapsing: one interrupt pending *)
  mutable notify_seen : int; (* frontend: last counter value observed *)
  mutable stale_responses : int;
  mutable protocol_violations : int; (* responds on slots not in service *)
  mutable req_poll_pickups : int; (* request handoffs at polling cost *)
  mutable resp_poll_deliveries : int; (* response handoffs at polling cost *)
  (* A killed channel (driver-VM crash) never completes an exchange
     again: senders fail fast with EIO, blocked receivers are woken so
     they can observe the death instead of hanging forever. *)
  mutable dead : bool;
  (* A retired channel (planned handoff: upgrade/migration) is dead
     with different semantics at the sender: the transport is being
     replaced, not lost, so stragglers raise {!Retired} and the
     frontend parks them for replay on the successor pool instead of
     faulting the session. *)
  mutable retired : bool;
  mutable timeouts : int;
  mutable retries : int;
  tracer : Obs.Trace.t; (* from [Config.tracer]; disabled = no-op *)
  chan_uid : int; (* distinguishes this ring's counter series *)
  service_trace : int array; (* backend: trace id drained per slot *)
}

(* Channel ordinal for trace counter-series names ("ring3.occupancy").
   The backend passes a uid derived from the guest VM id and channel
   index, so the series names are deterministic per machine and two
   machines in different domains never share a counter.  Channels
   built without a uid (tests) draw from a domain-local fallback in a
   disjoint range. *)
let fallback_uids = Domain.DLS.new_key (fun () -> ref 1_000_000)

(* ---- ring layout ---- *)

let st_free = 0
let st_req_ready = 1
let st_in_service = 2
let st_resp_ready = 3
let st_delivered = 4
let state_off slot = 4 * slot
let notify_off = 512

(* Doorbell-suppression counter: the number of frontend waiters
   currently poll-watching for their response.  While it is non-zero
   the backend's [respond] skips the response interrupt and hands the
   completion over at polling cost instead (the frontend mirror of the
   backend's hybrid poll window). *)
let front_watch_off = 516
let slot_off slot = Memory.Addr.page_size + (slot * Proto.slot_size)

(* the control page holds up to 128 slot state words before notify_off *)
let max_slots = notify_off / 4

let create ?uid engine ~config ~phys ~guest_vm ~driver_vm =
  let uid =
    match uid with
    | Some u -> u
    | None ->
        let r = Domain.DLS.get fallback_uids in
        incr r;
        !r
  in
  let slots = max 1 (min config.Config.ring_slots max_slots) in
  let slot_bytes = slots * Proto.slot_size in
  let pages =
    1 + ((slot_bytes + Memory.Addr.page_size - 1) / Memory.Addr.page_size)
  in
  let region = Hypervisor.Shared_page.allocate ~pages phys in
  let (_ : int) =
    Hypervisor.Shared_page.map_into region guest_vm ~perms:Memory.Perm.rw
  in
  let (_ : int) =
    Hypervisor.Shared_page.map_into region driver_vm ~perms:Memory.Perm.rw
  in
  let free_slots = Queue.create () in
  for i = 0 to slots - 1 do
    Queue.push i free_slots
  done;
  {
    engine;
    config;
    region;
    front_view = Hypervisor.Shared_page.view_of region guest_vm;
    back_view = Hypervisor.Shared_page.view_of region driver_vm;
    slots;
    req_rx = Sim.Mailbox.create engine;
    resp_box = Array.init slots (fun _ -> Sim.Mailbox.create engine);
    notify_rx = Sim.Mailbox.create engine;
    slot_sem = Sim.Semaphore.create slots;
    free_slots;
    next_seq = 0;
    service_seq = Array.make slots 0;
    service_active = Array.make slots false;
    back_active = false;
    req_irq_pending = false;
    resp_irq_pending = false;
    back_polling = false;
    req_poll_pending = false;
    resp_poll_pending = false;
    back_poll_budget_left = config.Config.hybrid_poll_budget_us;
    mode_override = None;
    hybrid_override = None;
    front_last_wake = neg_infinity;
    back_last_wake = neg_infinity;
    scan_cursor = 0;
    legs = 0;
    cold_legs = 0;
    rpcs = 0;
    in_flight = 0;
    max_in_flight = 0;
    in_service = 0;
    notifications = 0;
    pending_notify = false;
    notify_seen = 0;
    stale_responses = 0;
    protocol_violations = 0;
    req_poll_pickups = 0;
    resp_poll_deliveries = 0;
    dead = false;
    retired = false;
    timeouts = 0;
    retries = 0;
    tracer = config.Config.tracer;
    chan_uid = uid;
    service_trace = Array.make slots 0;
  }

let is_dead t = t.dead
let ring_slots t = t.slots

(* ---- live mode switching ----
   [Config.t] is immutable, so runtime notification-mode changes (an
   operator flipping a fleet from interrupts to hybrid mid-stream) are
   per-channel overrides consulted at every signalling decision.  The
   default [None] defers to the config, leaving behaviour — and every
   simulated-time table — bit-identical. *)

let comm_mode t =
  match t.mode_override with
  | Some m -> m
  | None -> t.config.Config.comm_mode

let hybrid_enabled t =
  match t.hybrid_override with
  | Some h -> h
  | None -> t.config.Config.hybrid

let set_comm_mode t mode = t.mode_override <- Some mode

let set_hybrid t on =
  t.hybrid_override <- Some on;
  (* a backend mid-window finishes that window; switching off leaves a
     zero budget so no new window opens, switching on grants a fresh
     episode budget immediately *)
  t.back_poll_budget_left <-
    (if on then t.config.Config.hybrid_poll_budget_us else 0.)

let leg_latency t =
  match comm_mode t with
  | Config.Interrupts -> t.config.Config.interrupt_latency_us
  | Config.Polling -> t.config.Config.polling_latency_us

let cold_extra t =
  match comm_mode t with
  | Config.Interrupts -> t.config.Config.cold_extra_interrupt_us
  | Config.Polling -> t.config.Config.cold_extra_polling_us

(** No operation in flight on either side of the ring. *)
let quiescent t = t.in_flight = 0 && t.in_service = 0

(** Dispatch weight for {!Chan_pool}: outstanding frontend operations,
    with a whole ring's worth of penalty while the backend worker is
    inside the driver (it may be blocked indefinitely in a read or
    poll, so new work should prefer a channel whose worker is free). *)
let load t = t.in_flight + (t.slots * min t.in_service 1)

(** Declare the channel dead (driver-VM crash).  With [poison] (the
    default) every blocked party — each slot's response waiter, the
    backend worker waiting for a doorbell, the notification dispatcher
    — is woken exactly once so it can observe [dead] and bail out.
    Slot holders release their ring slots as they fail, which wakes
    any publisher blocked waiting for a free slot in turn.
    [poison:false] models a silent crash: nobody is woken and
    detection is left to RPC deadlines or the frontend watchdog. *)
let kill ?(poison = true) t =
  if not t.dead then begin
    t.dead <- true;
    if poison then begin
      Array.iter (fun box -> Sim.Mailbox.send box ()) t.resp_box;
      Sim.Mailbox.send t.req_rx ();
      Sim.Mailbox.send t.notify_rx ()
    end
  end

exception Retired

(** Retire the channel (planned handoff): poison-kill it, but mark the
    death as {e planned} so a sender still inside {!rpc} raises
    {!Retired} — "the transport moved, replay me there" — rather than
    EIO, which would fault the whole session. *)
let retire t =
  if not t.dead then begin
    t.retired <- true;
    kill t
  end

(* Deterministic fault sites (driven by [Config.injector]).  Keys are
   stable strings so tests and experiments can arm them by name; all
   of them act at doorbell-leg granularity — a dropped doorbell loses
   the interrupt, not the descriptor, so only a deadline recovers. *)
let site_drop_req = "chan.drop_req"
let site_drop_resp = "chan.drop_resp"
let site_corrupt_req = "chan.corrupt_req"
let site_delay_req = "chan.delay_req"

let fault_fires t key =
  match t.config.Config.injector with
  | None -> false
  | Some inj -> Sim.Fault_inject.fires inj ~key

(* One signalling leg towards [receiver]: transfer latency, plus the
   cold surcharge when that receiver has been idle.  [k] runs in
   engine context on arrival. *)
let leg t ~receiver k =
  let now = Sim.Engine.now t.engine in
  let last =
    match receiver with `Front -> t.front_last_wake | `Back -> t.back_last_wake
  in
  let cold = now -. last > t.config.Config.cold_threshold_us in
  (match receiver with
  | `Front -> t.front_last_wake <- now
  | `Back -> t.back_last_wake <- now);
  t.legs <- t.legs + 1;
  if cold then t.cold_legs <- t.cold_legs + 1;
  let delay = leg_latency t +. (if cold then cold_extra t else 0.) in
  Sim.Engine.at t.engine ~delay k

(* One poll handoff towards an actively-polling receiver: no interrupt,
   no cold surcharge (a poll-watcher is awake by definition), just the
   shared-page pickup latency.  This is the hybrid win: while the
   receiver stays inside its window every transfer costs
   [polling_latency_us] even though the channel's steady-state mode is
   interrupts. *)
let poll_handoff t ~receiver k =
  let now = Sim.Engine.now t.engine in
  (match receiver with
  | `Front -> t.front_last_wake <- now
  | `Back -> t.back_last_wake <- now);
  Sim.Engine.at t.engine ~delay:t.config.Config.polling_latency_us k

let marshal t = Sim.Engine.wait t.config.Config.marshal_us

let fail_dead t =
  if t.retired then raise Retired
  else Oskit.Errno.fail Oskit.Errno.EIO "channel dead: driver VM down"

(* Tracing helpers.  Every one is a no-op behind a single boolean when
   the sink is disabled; none of them waits, so simulated time is
   untouched.  Counters are registry-wide; spans attach to the
   operation's trace id (0 = untraced, e.g. the watchdog heartbeat). *)
let traced t = Obs.Trace.enabled t.tracer
let m_incr t name = if traced t then Obs.Metrics.incr (Obs.Trace.metrics t.tracer) name

let occupancy_sample t =
  if traced t then begin
    let occ = float_of_int (t.slots - Queue.length t.free_slots) in
    Obs.Trace.counter t.tracer ~lane:Obs.Trace.Ring
      ~name:(Printf.sprintf "ring%d.occupancy" t.chan_uid)
      occ;
    Obs.Metrics.observe (Obs.Trace.metrics t.tracer) "ring.occupancy" occ
  end

(* Request doorbell, with the injected transport faults applied.  The
   delay fault stalls the publish path; the drop fault loses the
   doorbell (evaluated only when a leg would actually be sent — a
   coalesced publish has no doorbell to lose).  A suppressed doorbell
   is the coalescing win: the backend is either draining (it will see
   the descriptor on its next head re-scan) or already has an
   interrupt in flight that covers every descriptor marked since. *)
let ring_req_doorbell t ~trace =
  if fault_fires t site_delay_req then
    Sim.Engine.wait t.config.Config.fault_delay_us;
  if t.back_polling then begin
    (* the backend is inside its hybrid poll window: no interrupt —
       schedule a poll pickup token at polling cost (coalesced while
       one is already scheduled; the backend's re-scan drains every
       descriptor published meanwhile) *)
    m_incr t "doorbell.req_suppressed";
    if not t.req_poll_pending then begin
      t.req_poll_pending <- true;
      t.req_poll_pickups <- t.req_poll_pickups + 1;
      let sp =
        Obs.Trace.span_begin t.tracer ~trace ~lane:Obs.Trace.Transport
          ~cat:"stage" ~name:"doorbell:req_poll" ()
      in
      poll_handoff t ~receiver:`Back (fun () ->
          t.req_poll_pending <- false;
          Obs.Trace.span_end t.tracer sp;
          Sim.Mailbox.send t.req_rx ())
    end
  end
  else if (not t.back_active) && not t.req_irq_pending then begin
    if not (fault_fires t site_drop_req) then begin
      t.req_irq_pending <- true;
      m_incr t "doorbell.req_legs";
      let sp =
        Obs.Trace.span_begin t.tracer ~trace ~lane:Obs.Trace.Transport
          ~cat:"stage" ~name:"doorbell:req" ()
      in
      leg t ~receiver:`Back (fun () ->
          t.req_irq_pending <- false;
          t.back_active <- true;
          Obs.Trace.span_end t.tracer sp;
          Sim.Mailbox.send t.req_rx ())
    end
    else m_incr t "fault.doorbell_dropped"
  end
  else m_incr t "doorbell.req_coalesced"

(* Publish one request descriptor: marshal, stamp the attempt's
   sequence number, write the slot, mark it ready, ring.  Corruption
   garbles the opcode byte in the shared slot (the backend must
   reject, not crash); the sequence number is stamped first, so even a
   corrupt descriptor's rejection pairs with its attempt. *)
let publish t ~slot ~seq (req_bytes : bytes) =
  let trace = Proto.get_trace req_bytes in
  let sp =
    Obs.Trace.span_begin t.tracer ~trace ~lane:Obs.Trace.Frontend ~cat:"stage"
      ~name:"front:publish" ()
  in
  marshal t;
  let wire = Bytes.copy req_bytes in
  Proto.set_seq wire seq;
  if fault_fires t site_corrupt_req then
    Bytes.set wire 0 (Char.chr (Char.code (Bytes.get wire 0) lxor 0xff));
  t.front_view.Hypervisor.Shared_page.write ~offset:(slot_off slot) wire;
  t.front_view.Hypervisor.Shared_page.write_u32 ~offset:(state_off slot)
    st_req_ready;
  ring_req_doorbell t ~trace;
  Obs.Trace.span_end t.tracer sp

(* Response-interrupt arrival: deliver every response published since
   the leg was raised (engine context: page reads and mailbox sends
   only, no waits). *)
let deliver_responses t =
  t.resp_irq_pending <- false;
  if not t.dead then
    for slot = 0 to t.slots - 1 do
      if
        t.front_view.Hypervisor.Shared_page.read_u32 ~offset:(state_off slot)
        = st_resp_ready
      then begin
        t.front_view.Hypervisor.Shared_page.write_u32 ~offset:(state_off slot)
          st_delivered;
        Sim.Mailbox.send t.resp_box.(slot) ()
      end
    done

let fresh_seq t =
  t.next_seq <- t.next_seq + 1;
  t.next_seq

(** Frontend: one request/response exchange over a ring slot.  Blocks
    while the ring is full; up to [Config.ring_slots] callers may be
    inside concurrently.

    With a deadline ([timeout_us] override, else [Config.rpc_timeout_us];
    0 = wait forever) an unanswered request is {e resent} up to
    [Config.rpc_retries] times — with a fresh sequence number — before
    the exchange fails with ETIMEDOUT.  Retries give at-least-once
    semantics: a request whose response (rather than the request
    itself) was lost executes twice, so callers must only retry
    idempotent operations — which is why deadlines are opt-in.  A
    response carrying a stale sequence number (the late answer of a
    timed-out attempt) is discarded and the live attempt republished.
    A channel killed mid-exchange fails with EIO instead: the
    transport itself is gone. *)
let rpc ?timeout_us t (req_bytes : bytes) : bytes =
  if t.dead then fail_dead t;
  t.rpcs <- t.rpcs + 1;
  t.in_flight <- t.in_flight + 1;
  if t.in_flight > t.max_in_flight then t.max_in_flight <- t.in_flight;
  let trace = Proto.get_trace req_bytes in
  Fun.protect
    ~finally:(fun () -> t.in_flight <- t.in_flight - 1)
    (fun () ->
      let wait_sp =
        Obs.Trace.span_begin t.tracer ~trace ~lane:Obs.Trace.Frontend
          ~cat:"stage" ~name:"front:slot_wait" ()
      in
      Sim.Semaphore.acquire t.slot_sem;
      if t.dead then begin
        Sim.Semaphore.release t.slot_sem;
        Obs.Trace.span_end ~status:"error:dead" t.tracer wait_sp;
        fail_dead t
      end;
      let slot = Queue.pop t.free_slots in
      Obs.Trace.span_arg wait_sp "slot" (float_of_int slot);
      Obs.Trace.span_end t.tracer wait_sp;
      occupancy_sample t;
      let ring_sp =
        Obs.Trace.span_begin t.tracer ~trace ~lane:Obs.Trace.Ring ~cat:"ring"
          ~name:(Printf.sprintf "slot%d" slot)
          ()
      in
      let box = t.resp_box.(slot) in
      (* drop stale wakeups a timed-out previous occupant left behind:
         correctness comes from sequence pairing, but a buffered token
         would cost a pointless spurious wake *)
      while not (Sim.Mailbox.is_empty box) do
        ignore (Sim.Mailbox.recv box)
      done;
      Fun.protect
        ~finally:(fun () ->
          if not t.dead then
            t.front_view.Hypervisor.Shared_page.write_u32
              ~offset:(state_off slot) st_free;
          Queue.push slot t.free_slots;
          Obs.Trace.span_end t.tracer ring_sp;
          occupancy_sample t;
          Sim.Semaphore.release t.slot_sem)
        (fun () ->
          let deadline =
            match timeout_us with
            | Some d -> d
            | None -> t.config.Config.rpc_timeout_us
          in
          let rec attempt tries_left =
            let seq = fresh_seq t in
            publish t ~slot ~seq req_bytes;
            if t.dead then fail_dead t;
            await tries_left seq
          and await tries_left seq =
            let block () =
              if deadline > 0. then
                Sim.Mailbox.recv_timeout box ~timeout:deadline
              else Some (Sim.Mailbox.recv box)
            in
            let got =
              if hybrid_enabled t && not t.dead then begin
                (* hybrid frontend mirror: poll-watch the response for
                   one window before sleeping behind the response
                   doorbell.  While the watch counter in the control
                   page is non-zero, [respond] skips the interrupt and
                   hands completions over at polling cost. *)
                let window = t.config.Config.hybrid_poll_window_us in
                let window =
                  if deadline > 0. then min window deadline else window
                in
                let v =
                  t.front_view.Hypervisor.Shared_page.read_u32
                    ~offset:front_watch_off
                in
                t.front_view.Hypervisor.Shared_page.write_u32
                  ~offset:front_watch_off (v + 1);
                let watched =
                  Fun.protect
                    ~finally:(fun () ->
                      let v =
                        t.front_view.Hypervisor.Shared_page.read_u32
                          ~offset:front_watch_off
                      in
                      t.front_view.Hypervisor.Shared_page.write_u32
                        ~offset:front_watch_off (max 0 (v - 1)))
                    (fun () -> Sim.Mailbox.recv_timeout box ~timeout:window)
                in
                match watched with
                | Some () -> watched
                | None ->
                    (* window dry: re-arm the response doorbell and
                       sleep (the full deadline still applies — a dry
                       watch window is polling time, not RPC time) *)
                    if t.dead then Some () else block ()
              end
              else block ()
            in
            if t.dead then fail_dead t;
            match got with
            | Some () ->
                let wake = Sim.Engine.now t.engine in
                marshal t;
                let resp =
                  t.front_view.Hypervisor.Shared_page.read
                    ~offset:(slot_off slot) ~len:Proto.slot_size
                in
                if Proto.get_seq resp = seq then begin
                  Obs.Trace.add_complete t.tracer ~trace
                    ~lane:Obs.Trace.Frontend ~cat:"stage"
                    ~name:"front:complete" ~start:wake ();
                  resp
                end
                else begin
                  (* a late answer to a timed-out earlier attempt: it
                     clobbered our live request, so discard it and
                     republish the same attempt *)
                  t.stale_responses <- t.stale_responses + 1;
                  m_incr t "rpc.stale_responses";
                  publish t ~slot ~seq req_bytes;
                  if t.dead then fail_dead t;
                  await tries_left seq
                end
            | None ->
                t.timeouts <- t.timeouts + 1;
                m_incr t "rpc.timeouts";
                if tries_left > 0 then begin
                  t.retries <- t.retries + 1;
                  m_incr t "rpc.retries";
                  attempt (tries_left - 1)
                end
                else
                  Oskit.Errno.fail Oskit.Errno.ETIMEDOUT
                    "rpc deadline exceeded after retries"
          in
          attempt (max 0 t.config.Config.rpc_retries)))

(** Hostile-frontend injection (adversarial tests): write [bytes]
    straight into ring slot [slot] and mark it request-ready, bypassing
    the RPC state machine entirely — exactly what a compromised guest
    kernel with the shared region mapped writable can do.  No sequence
    pairing, no slot accounting; whatever response the backend
    publishes into the slot is simply left unread (and a later
    injection into the same slot clobbers it, as on real hardware). *)
let inject_raw t ~slot (bytes : bytes) =
  if slot < 0 || slot >= t.slots then invalid_arg "Channel.inject_raw";
  if not t.dead then begin
    let wire = Bytes.make Proto.slot_size '\000' in
    Bytes.blit bytes 0 wire 0 (min (Bytes.length bytes) Proto.slot_size);
    t.front_view.Hypervisor.Shared_page.write ~offset:(slot_off slot) wire;
    t.front_view.Hypervisor.Shared_page.write_u32 ~offset:(state_off slot)
      st_req_ready;
    ring_req_doorbell t ~trace:0
  end

(** Backend: block until a descriptor is ready and claim it; [None]
    once the channel is dead (the worker should exit).  One wakeup
    drains many: after serving, the worker's next call re-scans the
    ring head and picks up everything published meanwhile without any
    further interrupt. *)
let next_request t : (int * bytes) option =
  if t.dead then None
  else begin
    let scan () =
      let rec go i =
        if i >= t.slots then None
        else
          let slot = (t.scan_cursor + i) mod t.slots in
          if
            t.back_view.Hypervisor.Shared_page.read_u32 ~offset:(state_off slot)
            = st_req_ready
          then Some slot
          else go (i + 1)
      in
      go 0
    in
    let start = ref 0. in
    let rec next () =
      (* the drain span measures the scan-and-claim work itself, so its
         start is stamped at the point the scan actually begins — not
         at function entry, and never inside a hybrid poll window's
         wait, which would inflate drain spans under load *)
      start := Sim.Engine.now t.engine;
      match scan () with
      | Some slot ->
          t.scan_cursor <- (slot + 1) mod t.slots;
          t.back_view.Hypervisor.Shared_page.write_u32 ~offset:(state_off slot)
            st_in_service;
          t.service_active.(slot) <- true;
          t.in_service <- t.in_service + 1;
          marshal t;
          let bytes =
            t.back_view.Hypervisor.Shared_page.read ~offset:(slot_off slot)
              ~len:Proto.slot_size
          in
          t.service_seq.(slot) <- Proto.get_seq bytes;
          let trace = Proto.get_trace bytes in
          t.service_trace.(slot) <- trace;
          (* the drain's trace id is only known once the descriptor is
             read, so the span is recorded after the fact *)
          Obs.Trace.add_complete t.tracer ~trace ~lane:Obs.Trace.Backend
            ~cat:"stage" ~name:"back:drain" ~start:!start ();
          Some (slot, bytes)
      | None ->
          if hybrid_enabled t && t.back_poll_budget_left > 0. then begin
            (* hybrid: the ring just went dry, but more work may be a
               microsecond away.  Stay awake inside a bounded poll
               window — publishes hand over at polling cost instead of
               raising an interrupt — and only re-arm doorbells once a
               whole window passes with nothing arriving (or the
               episode's dry-poll budget runs out). *)
            let window =
              min t.config.Config.hybrid_poll_window_us t.back_poll_budget_left
            in
            t.back_polling <- true;
            m_incr t "hybrid.poll_windows";
            let t0 = Sim.Engine.now t.engine in
            let got = Sim.Mailbox.recv_timeout t.req_rx ~timeout:window in
            t.back_polling <- false;
            t.back_poll_budget_left <-
              t.back_poll_budget_left -. (Sim.Engine.now t.engine -. t0);
            match got with
            | Some () -> if t.dead then None else next ()
            | None -> if t.dead then None else sleep ()
          end
          else sleep ()
    and sleep () =
      (* ring drained (and any poll window dry): go back to sleep.  No
         wakeup can be lost — there is no suspension point between the
         empty scan, clearing [back_active] and blocking, so any
         publish after this point sees [back_active = false] and sends
         a doorbell; a poll pickup scheduled during the final window is
         still in flight and lands in the mailbox. *)
      t.back_active <- false;
      let () = Sim.Mailbox.recv t.req_rx in
      (* a real doorbell wakeup starts a fresh hybrid episode *)
      t.back_poll_budget_left <-
        (if hybrid_enabled t then t.config.Config.hybrid_poll_budget_us else 0.);
      if t.dead then None else next ()
    in
    next ()
  end

(** Backend: complete the descriptor claimed from slot [slot], echoing
    the sequence number it was drained with.  The response interrupt
    coalesces: if one is already in flight it covers this response
    too.  Dropped silently on a dead channel (a crashed driver VM
    answers nobody); the response-drop fault loses the interrupt leg
    (the descriptor stays ready and would ride a later response's leg
    — or the frontend deadline recovers). *)
let respond t ~slot (resp_bytes : bytes) =
  if not t.dead then begin
    if slot < 0 || slot >= t.slots then invalid_arg "Channel.respond";
    (* A respond must pair with an outstanding claim on the slot.  The
       authority is the backend-private [service_active] flag — not the
       control-page state word, which the guest has mapped writable
       (and which legitimately reads [st_req_ready] again when a
       timed-out frontend republished its resend into the slot).  A
       respond with no outstanding claim — a double-complete or a slot
       never claimed — is a protocol violation: it used to be masked by
       clamping the in-service count at zero; now it is counted and
       surfaced as EIO so the caller can score the guest instead of
       silently corrupting ring accounting. *)
    if not t.service_active.(slot) then begin
      t.protocol_violations <- t.protocol_violations + 1;
      m_incr t "containment.respond_violation";
      Oskit.Errno.fail Oskit.Errno.EIO "respond: slot not in service"
    end;
    t.service_active.(slot) <- false;
    let trace = t.service_trace.(slot) in
    let sp =
      Obs.Trace.span_begin t.tracer ~trace ~lane:Obs.Trace.Backend ~cat:"stage"
        ~name:"back:respond" ()
    in
    marshal t;
    let wire = Bytes.copy resp_bytes in
    Proto.set_seq wire t.service_seq.(slot);
    Proto.set_trace wire trace;
    t.back_view.Hypervisor.Shared_page.write ~offset:(slot_off slot) wire;
    t.back_view.Hypervisor.Shared_page.write_u32 ~offset:(state_off slot)
      st_resp_ready;
    t.in_service <- t.in_service - 1;
    Obs.Trace.span_end t.tracer sp;
    if
      t.back_view.Hypervisor.Shared_page.read_u32 ~offset:front_watch_off > 0
    then begin
      (* the waiter is poll-watching (hybrid frontend mirror): skip the
         interrupt, deliver at polling cost.  Coalesces like the
         interrupt path: one scheduled delivery sweeps every response
         marked ready since. *)
      m_incr t "doorbell.resp_suppressed";
      if not t.resp_poll_pending then begin
        t.resp_poll_pending <- true;
        t.resp_poll_deliveries <- t.resp_poll_deliveries + 1;
        let db_sp =
          Obs.Trace.span_begin t.tracer ~trace ~lane:Obs.Trace.Transport
            ~cat:"stage" ~name:"doorbell:resp_poll" ()
        in
        poll_handoff t ~receiver:`Front (fun () ->
            t.resp_poll_pending <- false;
            Obs.Trace.span_end t.tracer db_sp;
            deliver_responses t)
      end
    end
    else if not t.resp_irq_pending then begin
      if not (fault_fires t site_drop_resp) then begin
        t.resp_irq_pending <- true;
        m_incr t "doorbell.resp_legs";
        let db_sp =
          Obs.Trace.span_begin t.tracer ~trace ~lane:Obs.Trace.Transport
            ~cat:"stage" ~name:"doorbell:resp" ()
        in
        leg t ~receiver:`Front (fun () ->
            Obs.Trace.span_end t.tracer db_sp;
            deliver_responses t)
      end
      else m_incr t "fault.doorbell_dropped"
    end
    else m_incr t "doorbell.resp_coalesced"
  end

(** Backend: asynchronous notification towards the frontend (§5.1's
    "message to the frontend, e.g., when the keyboard is pressed").
    Runs in callback context (no waits): marshal cost is folded into
    the leg. *)
let notify_mask = 0xffff_ffff

let notify t =
  if not t.dead then begin
    t.notifications <- t.notifications + 1;
    let counter =
      t.back_view.Hypervisor.Shared_page.read_u32 ~offset:notify_off
    in
    (* the notify word is a u32 on the wire: wrap explicitly instead of
       letting the OCaml int grow past what the shared page models *)
    t.back_view.Hypervisor.Shared_page.write_u32 ~offset:notify_off
      ((counter + 1) land notify_mask);
    (* Signals collapse: while a notification interrupt is pending, new
       events only bump the counter (like SIGIO, §2.1). *)
    if not t.pending_notify then begin
      t.pending_notify <- true;
      m_incr t "notify.legs";
      leg t ~receiver:`Front (fun () -> Sim.Mailbox.send t.notify_rx ())
    end
    else m_incr t "notify.collapsed"
  end

(** Test hook: preset the raw notification counter (e.g. just below the
    u32 boundary) as if that many notifications had already been
    observed, so wrap behaviour can be exercised directly. *)
let preset_notify_counter t v =
  let v = v land notify_mask in
  t.back_view.Hypervisor.Shared_page.write_u32 ~offset:notify_off v;
  t.notify_seen <- v

(** Frontend: block for the next notification; [None] once the channel
    is dead (the dispatcher should exit).  Returns the number of
    notifications raised since the last observation — the wrap-safe
    delta of the shared u32 counter, not its raw value. *)
let next_notification t =
  if t.dead then None
  else
    let () = Sim.Mailbox.recv t.notify_rx in
    if t.dead then None
    else begin
      t.pending_notify <- false;
      let counter =
        t.front_view.Hypervisor.Shared_page.read_u32 ~offset:notify_off
      in
      let delta = (counter - t.notify_seen) land notify_mask in
      t.notify_seen <- counter;
      Some delta
    end

type stats = {
  legs : int;
  cold_legs : int;
  rpcs : int;
  max_in_flight : int;
  notifications : int;
  timeouts : int;
  retries : int;
  stale_responses : int;
  protocol_violations : int;
  req_poll_pickups : int;
  resp_poll_deliveries : int;
}

let stats (t : t) : stats =
  {
    legs = t.legs;
    cold_legs = t.cold_legs;
    rpcs = t.rpcs;
    max_in_flight = t.max_in_flight;
    notifications = t.notifications;
    timeouts = t.timeouts;
    retries = t.retries;
    stale_responses = t.stale_responses;
    protocol_violations = t.protocol_violations;
    req_poll_pickups = t.req_poll_pickups;
    resp_poll_deliveries = t.resp_poll_deliveries;
  }
