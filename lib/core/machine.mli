(** Machine assembly: a complete simulated host in the Figure 1(c)
    topology, or the paper's Native / Device-assignment comparison
    configurations.  Workloads only ever see a kernel + device paths,
    so the same code runs unchanged against every mode. *)

type mode = Native | Device_assignment | Paradice

type guest = {
  vm : Hypervisor.Vm.t;
  kernel : Oskit.Kernel.t;
  frontend : Cvd_front.t;
  mutable link : Cvd_back.guest_link;  (** replaced on driver-VM reboot *)
  pci : Virt_pci.t;
}

type export_record = {
  path : string;
  cls : string;
  driver : string;
  exclusive : bool;
  kinds : Oskit.Os_flavor.op_kind list;
  entries : Analyzer.Extract.t option;
  info : Device_info.t;
}

type gpu_attachment = {
  gpu : Devices.Gpu_hw.t;
  radeon : Devices.Radeon_drv.t;
  gpu_iommu : Memory.Iommu.t;
  mc_spn : int;
  mutable isolation : Hypervisor.Region.t option;
}

(** A second live driver VM serving the same exports — a session-
    migration target. *)
type replica = {
  rep_vm : Hypervisor.Vm.t;
  rep_kernel : Oskit.Kernel.t;
  rep_backend : Cvd_back.t;
}

type t = {
  mode : mode;
  config : Config.t;
  engine : Sim.Engine.t;
  phys : Memory.Phys_mem.t;
  hyp : Hypervisor.Hyp.t;
  mutable driver_vm : Hypervisor.Vm.t;
  mutable driver_kernel : Oskit.Kernel.t;
  mutable backend : Cvd_back.t;
  driver_mem_mib : int;
  driver_flavor : Oskit.Os_flavor.t;
  mutable driver_generation : int;
  mutable last_killed_at : float;
  policy : Policy.t;
  mutable exports : export_record list;
  mutable guests : guest list;
  mutable replicas : replica list;
  mutable gpu : gpu_attachment option;
  mutable mouse : Devices.Evdev.t option;
  mutable keyboard : Devices.Evdev.t option;
  mutable camera : Devices.V4l2_drv.t option;
  mutable audio : Devices.Pcm_drv.t option;
  mutable netmap : Devices.Netmap_drv.t option;
}

val create :
  ?mode:mode ->
  ?config:Config.t ->
  ?driver_mem_mib:int ->
  ?flavor:Oskit.Os_flavor.t ->
  unit ->
  t

val engine : t -> Sim.Engine.t
val hyp : t -> Hypervisor.Hyp.t
val driver_kernel : t -> Oskit.Kernel.t
val policy : t -> Policy.t
val config : t -> Config.t

(** Guests in the order they were added. *)
val guests : t -> guest list

(** Add a guest VM (Paradice mode only): connects it to the backend,
    builds its frontend, and replays every export into its /dev. *)
val add_guest :
  t -> ?name:string -> ?mem_mib:int -> ?flavor:Oskit.Os_flavor.t -> unit -> guest

(** The kernel applications run against in this mode. *)
val app_kernel : t -> Oskit.Kernel.t

(** Spawn an application task, registered with the hypervisor so
    forwarded operations can name its address space. *)
val spawn_app : t -> Oskit.Kernel.t -> name:string -> Oskit.Defs.task

(** {1 Driver-VM crash recovery (§7.2)}

    [create] also arms the ["cvd.crash"] fault site on
    [Config.injector], so a backend worker hitting it performs a real
    mid-RPC kill. *)

(** Kill the current driver VM (hypervisor rejects it, backend stops
    serving).  [poison] (default true) wakes blocked parties; false is
    a silent death.  Idempotent; safe from engine callbacks. *)
val kill_driver_vm : ?poison:bool -> t -> unit

(** Reboot a killed driver VM: boot delay, fresh VM/kernel/backend,
    devices re-probed, every guest reconnected and its frontend
    reattached.  Previously-open guest files stay stale; new opens
    succeed.  Process context. *)
val reboot_driver_vm : t -> unit

val last_killed_at : t -> float
(** Sim time of the last kill; nan if never killed. *)

val driver_generation : t -> int
(** Number of reboots so far. *)

(** {1 Live driver-VM operations (hot upgrade, session migration)}

    Planned handoffs built on the session checkpoint/restore core:
    quiesce each guest link (frontend parks new operations, rings
    drain, heartbeat suspended), checkpoint backend-side session state
    through the versioned {!Snapshot} wire format, swap or copy, then
    restore through the same sanitization as live requests and resume.
    Guests' open files keep working — no ENODEV on the happy path. *)

(** Abort-style fault sites checked during the handoffs (see
    {!Sim.Fault_inject.check}). *)
val site_upgrade_crash_checkpoint : string

val site_upgrade_crash_restore : string
val site_migrate_crash_checkpoint : string
val site_migrate_crash_transfer : string
val site_migrate_crash_restore : string

type upgrade_stats = {
  up_generation : int;
  up_boot_us : float;
      (** replacement boot time, overlapped with live service — outside
          the blackout *)
  up_blackout_us : float;  (** guest-visible stall: quiesce → resume *)
  up_quiesce_us : float;
  up_checkpoint_us : float;
  up_swap_us : float;
  up_restore_us : float;
  up_resume_us : float;
  up_checkpoint_bytes : int;  (** encoded snapshot bytes, all guests *)
  up_parked_ops : int;
      (** operations that hit a retiring channel and replayed on the
          successor *)
  up_files_restored : int;
  up_files_dropped : int;  (** snapshot entries refused by re-validation *)
  up_vmas_restored : int;
  up_fasync_rearmed : int;
  up_mappings_kept : int;
  up_mappings_dropped : int;
  up_grants_revoked : int;
}

type upgrade_outcome =
  | Upgraded of upgrade_stats
  | Upgrade_degraded_reboot
      (** the incumbent was already dead (or died while the replacement
          booted): fell back to {!reboot_driver_vm} crash recovery *)
  | Upgrade_aborted of string
      (** crash (fault-site key) before the point of no return: the
          replacement was discarded and the incumbent kept serving —
          guests saw only latency *)
  | Upgrade_failed_dead of string
      (** crash after the incumbent was gone: guests fault exactly as
          on a driver-VM crash; {!reboot_driver_vm} recovers *)

(** Hot-upgrade the driver VM: boot the replacement while the incumbent
    serves, then quiesce, checkpoint, swap, restore, resume.  Process
    context. *)
val upgrade_driver_vm : t -> upgrade_outcome

(** Live replicas in spawn order. *)
val replicas : t -> replica list

(** Boot a second live driver VM serving the same exports — a
    migration target.  Process context. *)
val spawn_driver_replica : ?name:string -> t -> replica

type migrate_stats = {
  mg_blackout_us : float;
  mg_checkpoint_bytes : int;
  mg_files_restored : int;
  mg_files_dropped : int;
  mg_vmas_restored : int;
  mg_fasync_rearmed : int;
  mg_mappings_kept : int;
  mg_mappings_dropped : int;
  mg_grants_revoked : int;
}

type migrate_outcome =
  | Migrated of migrate_stats
  | Migrate_aborted of string
      (** crash before cutover: the session is untouched on the
          source *)
  | Migrate_failed_back of string * migrate_stats
      (** the destination crashed mid-restore; the same snapshot was
          restored back onto the source — the session lands whole on
          exactly one side *)

(** Move one guest's session between live driver VMs using the same
    checkpoint/restore core as the hot upgrade.  [dst] is typically a
    {!replica}'s backend (or [t.backend] to migrate home).  Process
    context. *)
val migrate_guest : t -> guest -> dst:Cvd_back.t -> migrate_outcome

(** {1 Device attachment}

    Each attaches the hardware model and its driver to the driver VM,
    registers the device file, and exports it (virtual device file +
    device info module + virtual PCI function) to every guest. *)

val attach_gpu : t -> ?vram_mib:int -> unit -> gpu_attachment

(** Device data isolation for the GPU (§4.2, §5.3): donate per-guest
    pools, create protected regions, take the MC MMIO page from the
    driver VM, switch the driver to isolation mode.  Call after all
    guests exist. *)
val enable_gpu_data_isolation :
  t -> ?pool_pages_per_guest:int -> unit -> Hypervisor.Region.t

val attach_mouse : t -> Devices.Evdev.t
val attach_keyboard : t -> Devices.Evdev.t
val attach_camera : t -> ?fps:float -> unit -> Devices.V4l2_drv.t
val attach_audio : t -> Devices.Pcm_drv.t
val attach_netmap : t -> Devices.Netmap_drv.t

(** The null device behind the §6.1.1 no-op microbenchmark. *)
val null_ioctl : int

val attach_null : t -> Oskit.Defs.device
