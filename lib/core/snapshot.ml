(** Versioned session snapshots for planned driver-VM handoff (hot
    upgrade, §7.1–§7.2 applied to {e planned} restarts; session
    migration between live driver VMs).

    A snapshot captures exactly the backend-side state a successor
    driver VM needs to keep a guest's open files working — and nothing
    it could not re-derive or re-validate:

    - per-guest open vfds with the device path, fasync/nonblock flags
      and mirrored VMA layout of each file;
    - the containment record (misbehavior counters, score, quarantine
      flag) so a hostile guest does not launder its history through an
      upgrade;
    - the outstanding grant-table groups, checkpointed so the restore
      path can {e verify} the shared table rather than trust it.

    What is deliberately {e not} in a snapshot: device-internal state
    (drivers are re-entered through [fop_open], exactly as after a
    crash reboot — the paper's §7.1 recovery model), hypervisor EPT /
    guest-leaf mappings (keyed by the guest, they survive the swap and
    are re-validated in place), and transport state (rings are rebuilt
    empty; in-flight operations drain or are replayed by the
    frontend).

    The wire format is little-endian and versioned; {!decode} distrusts
    the blob the way {!Proto.decode_request} distrusts a descriptor:
    every length is bounded and every tag checked, raising {!Malformed}
    rather than producing an undefined session. *)

type file_rec = {
  fr_vfd : int;
  fr_path : string;
  fr_fasync : bool;  (** had live SIGIO subscribers *)
  fr_nonblock : bool;
  fr_vmas : (int * int * int) list;  (** (gva, len, pgoff), oldest first *)
}

type link_snap = {
  ls_guest_vm_id : int;
  ls_next_vfd : int;
  ls_ops_served : int;
  ls_malformed : int;
  ls_rejected : int;
  ls_grant_faults : int;
  ls_quota_breaches : int;
  ls_score : int;
  ls_quarantined : bool;
  ls_files : file_rec list;  (** ascending vfd *)
  ls_grants : (int * Hypervisor.Grant_table.op list) list;
      (** outstanding grant-table groups, from {!Hypervisor.Grant_table.snapshot} *)
}

exception Malformed of string

let malformed fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

(* Format version history:
   1 — initial: header, file table, grant table. *)
let magic = 0x50AD1CE1
let version = 1

(* Defensive caps mirroring the live sanitization bounds: a snapshot
   may never describe a session the sanitizer would have refused. *)
let max_files = 1 lsl 20 (* Proto.max_vfd *)
let max_vmas_per_file = 4096
let max_grant_groups = 4096
let max_ops_per_group = 4096

(* ---- writer ---- *)

let w32 b v = Buffer.add_int32_le b (Int32.of_int v)
let w64 b v = Buffer.add_int64_le b (Int64.of_int v)

let w_string b s =
  w32 b (String.length s);
  Buffer.add_string b s

let w_bool b v = w32 b (if v then 1 else 0)

let op_code : Hypervisor.Grant_table.op -> int = function
  | Hypervisor.Grant_table.Copy_to_user _ -> 1
  | Hypervisor.Grant_table.Copy_from_user _ -> 2
  | Hypervisor.Grant_table.Map_page _ -> 3

let op_fields : Hypervisor.Grant_table.op -> int * int = function
  | Hypervisor.Grant_table.Copy_to_user { addr; len }
  | Hypervisor.Grant_table.Copy_from_user { addr; len }
  | Hypervisor.Grant_table.Map_page { addr; len } ->
      (addr, len)

(* ---- reader ---- *)

type cursor = { buf : string; mutable pos : int }

let need c n =
  if c.pos + n > String.length c.buf then
    malformed "truncated snapshot at byte %d (need %d more)" c.pos n

let r32 c =
  need c 4;
  let v = Int32.to_int (String.get_int32_le c.buf c.pos) land 0xffffffff in
  c.pos <- c.pos + 4;
  v

let r64 c =
  need c 8;
  let v = Int64.to_int (String.get_int64_le c.buf c.pos) in
  c.pos <- c.pos + 8;
  v

let r_string c =
  let n = r32 c in
  if n > 256 then malformed "path length %d" n;
  need c n;
  let s = String.sub c.buf c.pos n in
  c.pos <- c.pos + n;
  s

let r_bool c = r32 c <> 0

(* ---- encode ---- *)

let encode (snap : link_snap) : string =
  let b = Buffer.create 256 in
  w32 b magic;
  w32 b version;
  w32 b snap.ls_guest_vm_id;
  w32 b snap.ls_next_vfd;
  w32 b snap.ls_ops_served;
  w32 b snap.ls_malformed;
  w32 b snap.ls_rejected;
  w32 b snap.ls_grant_faults;
  w32 b snap.ls_quota_breaches;
  w32 b snap.ls_score;
  w_bool b snap.ls_quarantined;
  w32 b (List.length snap.ls_files);
  List.iter
    (fun fr ->
      w32 b fr.fr_vfd;
      w_string b fr.fr_path;
      w_bool b fr.fr_fasync;
      w_bool b fr.fr_nonblock;
      w32 b (List.length fr.fr_vmas);
      List.iter
        (fun (gva, len, pgoff) ->
          w64 b gva;
          w64 b len;
          w64 b pgoff)
        fr.fr_vmas)
    snap.ls_files;
  w32 b (List.length snap.ls_grants);
  List.iter
    (fun (grant_ref, ops) ->
      w32 b grant_ref;
      w32 b (List.length ops);
      List.iter
        (fun op ->
          let addr, len = op_fields op in
          w32 b (op_code op);
          w64 b addr;
          w64 b len)
        ops)
    snap.ls_grants;
  Buffer.contents b

(* ---- decode ---- *)

let decode (blob : string) : link_snap =
  let c = { buf = blob; pos = 0 } in
  let m = r32 c in
  if m <> magic then malformed "bad magic 0x%x" m;
  let v = r32 c in
  if v <> version then malformed "unsupported snapshot version %d" v;
  let ls_guest_vm_id = r32 c in
  let ls_next_vfd = r32 c in
  let ls_ops_served = r32 c in
  let ls_malformed = r32 c in
  let ls_rejected = r32 c in
  let ls_grant_faults = r32 c in
  let ls_quota_breaches = r32 c in
  let ls_score = r32 c in
  let ls_quarantined = r_bool c in
  let nfiles = r32 c in
  if nfiles > max_files then malformed "file count %d" nfiles;
  let files =
    List.init nfiles (fun _ ->
        let fr_vfd = r32 c in
        if fr_vfd < 0 || fr_vfd > max_files then malformed "vfd %d" fr_vfd;
        let fr_path = r_string c in
        let fr_fasync = r_bool c in
        let fr_nonblock = r_bool c in
        let nvmas = r32 c in
        if nvmas > max_vmas_per_file then malformed "vma count %d" nvmas;
        let fr_vmas =
          List.init nvmas (fun _ ->
              let gva = r64 c in
              let len = r64 c in
              let pgoff = r64 c in
              if len < 0 || gva < 0 || pgoff < 0 then
                malformed "negative vma field";
              (gva, len, pgoff))
        in
        { fr_vfd; fr_path; fr_fasync; fr_nonblock; fr_vmas })
  in
  let ngrants = r32 c in
  if ngrants > max_grant_groups then malformed "grant group count %d" ngrants;
  let grants =
    List.init ngrants (fun _ ->
        let grant_ref = r32 c in
        if grant_ref < 0 || grant_ref >= Hypervisor.Grant_table.capacity then
          malformed "grant ref %d" grant_ref;
        let nops = r32 c in
        if nops > max_ops_per_group then malformed "op count %d" nops;
        let ops =
          List.init nops (fun _ ->
              let code = r32 c in
              let addr = r64 c in
              let len = r64 c in
              if addr < 0 || len < 0 then malformed "negative grant field";
              match code with
              | 1 -> Hypervisor.Grant_table.Copy_to_user { addr; len }
              | 2 -> Hypervisor.Grant_table.Copy_from_user { addr; len }
              | 3 -> Hypervisor.Grant_table.Map_page { addr; len }
              | n -> malformed "grant op kind %d" n)
        in
        (grant_ref, ops))
  in
  if c.pos <> String.length blob then
    malformed "%d trailing bytes" (String.length blob - c.pos);
  {
    ls_guest_vm_id;
    ls_next_vfd;
    ls_ops_served;
    ls_malformed;
    ls_rejected;
    ls_grant_faults;
    ls_quota_breaches;
    ls_score;
    ls_quarantined;
    ls_files = files;
    ls_grants = grants;
  }
