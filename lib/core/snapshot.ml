(** Versioned session snapshots for planned driver-VM handoff (hot
    upgrade, §7.1–§7.2 applied to {e planned} restarts; session
    migration between live driver VMs).

    A snapshot captures exactly the backend-side state a successor
    driver VM needs to keep a guest's open files working — and nothing
    it could not re-derive or re-validate:

    - per-guest open vfds with the device path, fasync/nonblock flags
      and mirrored VMA layout of each file;
    - the containment record (misbehavior counters, score, quarantine
      flag) so a hostile guest does not launder its history through an
      upgrade;
    - the outstanding grant-table groups, checkpointed so the restore
      path can {e verify} the shared table rather than trust it.

    What is deliberately {e not} in a snapshot: device-internal state
    (drivers are re-entered through [fop_open], exactly as after a
    crash reboot — the paper's §7.1 recovery model), hypervisor EPT /
    guest-leaf mappings (keyed by the guest, they survive the swap and
    are re-validated in place), and transport state (rings are rebuilt
    empty; in-flight operations drain or are replayed by the
    frontend).

    The v1 wire layout is declared {e once} below as a
    {!Wire_spec.Stream} combinator value ([snap_t]); {!encode} and
    {!decode} are the derived writer and reader over it.  {!decode}
    distrusts the blob the way {!Proto.decode_request} distrusts a
    descriptor: every length and tag check is attached to the field
    that carries it, raising {!Malformed} rather than producing an
    undefined session. *)

type file_rec = {
  fr_vfd : int;
  fr_path : string;
  fr_fasync : bool;  (** had live SIGIO subscribers *)
  fr_nonblock : bool;
  fr_vmas : (int * int * int) list;  (** (gva, len, pgoff), oldest first *)
}

type link_snap = {
  ls_guest_vm_id : int;
  ls_next_vfd : int;
  ls_ops_served : int;
  ls_malformed : int;
  ls_rejected : int;
  ls_grant_faults : int;
  ls_quota_breaches : int;
  ls_score : int;
  ls_quarantined : bool;
  ls_files : file_rec list;  (** ascending vfd *)
  ls_grants : (int * Hypervisor.Grant_table.op list) list;
      (** outstanding grant-table groups, from {!Hypervisor.Grant_table.snapshot} *)
}

exception Malformed of string

let malformed fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

(* Format version history:
   1 — initial: header, file table, grant table. *)
let magic = 0x50AD1CE1
let version = 1

(* Defensive caps mirroring the live sanitization bounds: a snapshot
   may never describe a session the sanitizer would have refused. *)
let max_files = 1 lsl 20 (* Proto.max_vfd *)
let max_vmas_per_file = 4096
let max_grant_groups = 4096
let max_ops_per_group = 4096

let op_code : Hypervisor.Grant_table.op -> int = function
  | Hypervisor.Grant_table.Copy_to_user _ -> 1
  | Hypervisor.Grant_table.Copy_from_user _ -> 2
  | Hypervisor.Grant_table.Map_page _ -> 3

let op_fields : Hypervisor.Grant_table.op -> int * int = function
  | Hypervisor.Grant_table.Copy_to_user { addr; len }
  | Hypervisor.Grant_table.Copy_from_user { addr; len }
  | Hypervisor.Grant_table.Map_page { addr; len } ->
      (addr, len)

(* ---- the v1 layout, declared once ----

   Checks are closures raising {!Malformed} directly, attached to the
   field whose wire word they bound; [Wire_spec.Stream] runs them in
   read order.  u32-read counts and refs cannot be negative by the
   DSL's read policy, so only upper bounds appear; 64-bit fields read
   under the u63 policy, so a hostile top-bit-set word surfaces as a
   negative int and is rejected by the explicit checks below. *)

module Ws = Wire_spec.Stream

let vma_t : (int * int * int) Ws.t =
  Ws.conv
    (fun ((gva, len), pgoff) ->
      if len < 0 || gva < 0 || pgoff < 0 then malformed "negative vma field";
      (gva, len, pgoff))
    (fun (gva, len, pgoff) -> ((gva, len), pgoff))
    (Ws.pair (Ws.pair Ws.i64 Ws.i64) Ws.i64)

let file_t : file_rec Ws.t =
  Ws.conv
    (fun ((((fr_vfd, fr_path), fr_fasync), fr_nonblock), fr_vmas) ->
      { fr_vfd; fr_path; fr_fasync; fr_nonblock; fr_vmas })
    (fun fr ->
      ((((fr.fr_vfd, fr.fr_path), fr.fr_fasync), fr.fr_nonblock), fr.fr_vmas))
    (Ws.pair
       (Ws.pair
          (Ws.pair
             (Ws.pair
                (Ws.u32c (fun v -> if v > max_files then malformed "vfd %d" v))
                (Ws.strc (fun n -> if n > 256 then malformed "path length %d" n)))
             Ws.boolean)
          Ws.boolean)
       (Ws.listc
          (fun n -> if n > max_vmas_per_file then malformed "vma count %d" n)
          vma_t))

let grant_op_t : Hypervisor.Grant_table.op Ws.t =
  Ws.conv
    (fun (code, (addr, len)) ->
      if addr < 0 || len < 0 then malformed "negative grant field";
      match code with
      | 1 -> Hypervisor.Grant_table.Copy_to_user { addr; len }
      | 2 -> Hypervisor.Grant_table.Copy_from_user { addr; len }
      | 3 -> Hypervisor.Grant_table.Map_page { addr; len }
      | n -> malformed "grant op kind %d" n)
    (fun op -> (op_code op, op_fields op))
    (Ws.pair Ws.u32 (Ws.pair Ws.i64 Ws.i64))

let grant_group_t : (int * Hypervisor.Grant_table.op list) Ws.t =
  Ws.pair
    (Ws.u32c (fun g ->
         if g >= Hypervisor.Grant_table.capacity then malformed "grant ref %d" g))
    (Ws.listc
       (fun n -> if n > max_ops_per_group then malformed "op count %d" n)
       grant_op_t)

let header_t : (int * int) Ws.t =
  Ws.pair
    (Ws.u32c (fun m -> if m <> magic then malformed "bad magic 0x%x" m))
    (Ws.u32c (fun v ->
         if v <> version then malformed "unsupported snapshot version %d" v))

let counters_t :
    (((int * int) * (int * int)) * ((int * int) * (int * int))) Ws.t =
  Ws.pair
    (Ws.pair (Ws.pair Ws.u32 Ws.u32) (Ws.pair Ws.u32 Ws.u32))
    (Ws.pair (Ws.pair Ws.u32 Ws.u32) (Ws.pair Ws.u32 Ws.u32))

let snap_t : link_snap Ws.t =
  Ws.conv
    (fun ( ( _header,
             ( ( ((ls_guest_vm_id, ls_next_vfd), (ls_ops_served, ls_malformed)),
                 ( (ls_rejected, ls_grant_faults),
                   (ls_quota_breaches, ls_score) ) ),
               ls_quarantined ) ),
           (ls_files, ls_grants) ) ->
      {
        ls_guest_vm_id;
        ls_next_vfd;
        ls_ops_served;
        ls_malformed;
        ls_rejected;
        ls_grant_faults;
        ls_quota_breaches;
        ls_score;
        ls_quarantined;
        ls_files;
        ls_grants;
      })
    (fun s ->
      ( ( (magic, version),
          ( ( ( (s.ls_guest_vm_id, s.ls_next_vfd),
                (s.ls_ops_served, s.ls_malformed) ),
              ( (s.ls_rejected, s.ls_grant_faults),
                (s.ls_quota_breaches, s.ls_score) ) ),
            s.ls_quarantined ) ),
        (s.ls_files, s.ls_grants) ))
    (Ws.pair
       (Ws.pair header_t (Ws.pair counters_t Ws.boolean))
       (Ws.pair
          (Ws.listc (fun n -> if n > max_files then malformed "file count %d" n) file_t)
          (Ws.listc
             (fun n -> if n > max_grant_groups then malformed "grant group count %d" n)
             grant_group_t)))

(* ---- derived codec ---- *)

let encode (snap : link_snap) : string =
  let b = Buffer.create 256 in
  Ws.write b snap_t snap;
  Buffer.contents b

let decode (blob : string) : link_snap =
  let c = Ws.cursor blob in
  let snap =
    (* field checks raise our own Malformed; the stream reader raises
       Wire_spec.Malformed on truncation — map it onto ours so callers
       see a single exception *)
    try Ws.read c snap_t with Wire_spec.Malformed m -> raise (Malformed m)
  in
  if c.Ws.pos <> String.length blob then
    malformed "%d trailing bytes" (String.length blob - c.Ws.pos);
  snap
