(** Versioned session snapshots for planned driver-VM handoff: hot
    upgrade and session migration checkpoint exactly the backend-side
    state a successor driver VM needs to keep a guest's open files
    working — open vfds and their per-file state, VMA layouts,
    outstanding grant groups, and the containment record (so
    quarantine and quotas survive the swap).

    Not in a snapshot: device-internal driver state (drivers are
    re-entered through [fop_open], the §7.1 recovery model),
    hypervisor mappings (guest-keyed, they survive in place and are
    re-validated), and transport state (rings are rebuilt empty). *)

type file_rec = {
  fr_vfd : int;  (** the guest-visible virtual descriptor, preserved *)
  fr_path : string;  (** re-vetted through {!Proto.valid_path} on restore *)
  fr_fasync : bool;  (** had live SIGIO subscribers *)
  fr_nonblock : bool;
  fr_vmas : (int * int * int) list;  (** (gva, len, pgoff), oldest first *)
}

type link_snap = {
  ls_guest_vm_id : int;
  ls_next_vfd : int;
  ls_ops_served : int;
  ls_malformed : int;
  ls_rejected : int;
  ls_grant_faults : int;
  ls_quota_breaches : int;
  ls_score : int;
  ls_quarantined : bool;
  ls_files : file_rec list;  (** ascending vfd *)
  ls_grants : (int * Hypervisor.Grant_table.op list) list;
      (** outstanding grant-table groups, from {!Hypervisor.Grant_table.snapshot} *)
}

exception Malformed of string

(** Current wire-format version (the blob also carries it). *)
val version : int

(** Serialise to the little-endian versioned wire format. *)
val encode : link_snap -> string

(** Parse a blob; raises {!Malformed} on bad magic, an unsupported
    version, any out-of-bound length or tag, or trailing bytes —
    a corrupt checkpoint must never produce an undefined session. *)
val decode : string -> link_snap
