(* Declarative wire-format specs: one declaration per message, four
   derived artifacts (encoder / decoder / sanitizer / fuzzer).  See the
   interface for the design rationale. *)

exception Malformed of string
exception Oversized of { field : string; length : int; limit : int }

type limits = {
  max_transfer_bytes : int;
  poll_timeout_cap_us : float;
  grant_capacity : int;
}

type fval = I of int | I64 of int64 | F of float | S of string | B of bool
type width = U32 | U63
type bound = Lit of int | Max_transfer | Max_mmap | Max_vfd | No_bound

type kind =
  | Int of width
  | Raw64
  | Flag
  | Timeout of { reject : string }
  | Str of { len_off : int; max : int; reject : string }

type field = { fname : string; off : int; kind : kind }

type vcheck =
  | Vrange of { field : string; min : int; max : bound; detail : string }
  | Vwrap of { base : string; len : string; detail : string }
  | Vtimeout of { field : string; detail : string }
  | Vpath of { field : string; detail : string }

type violation = { field : string; detail : string }

type 'm spec = {
  op : int;
  name : string;
  takes_vfd : bool;
  batchable : bool;
  fields : field list;
  vchecks : vcheck list;
  build : vfd:int -> fval list -> 'm;
  parts : 'm -> int * fval list;
}

(* Device mmaps legitimately exceed the copy-transfer cap (a GPU BO or
   a netmap ring can be tens of MiB), but must still be bounded. *)
let max_mmap_bytes = 1 lsl 30
let max_vfd = 1 lsl 20

let eval_bound limits = function
  | Lit n -> n
  | Max_transfer -> limits.max_transfer_bytes
  | Max_mmap -> max_mmap_bytes
  | Max_vfd -> max_vfd
  | No_bound -> max_int

let valid_path path =
  let n = String.length path in
  let has_dotdot = ref false in
  for i = 0 to n - 2 do
    if path.[i] = '.' && path.[i + 1] = '.' then has_dotdot := true
  done;
  n > 5 && n <= 256
  && String.sub path 0 5 = "/dev/"
  && (not (String.contains path '\000'))
  && not !has_dotdot

(* ---- coverage registry ---- *)

module Coverage = struct
  let enabled = ref false
  let table : (string, int ref) Hashtbl.t = Hashtbl.create 64
  let enable () = enabled := true
  let disable () = enabled := false
  let reset () = Hashtbl.reset table

  let hit label =
    if !enabled then
      match Hashtbl.find_opt table label with
      | Some r -> incr r
      | None -> Hashtbl.add table label (ref 1)

  let distinct () = Hashtbl.length table

  let snapshot () =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) table []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
end

(* ---- slot primitives (little-endian, fixed offsets) ---- *)

let w32 b off v = Bytes.set_int32_le b off (Int32.of_int v)
let w64 b off v = Bytes.set_int64_le b off (Int64.of_int v)
let r32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xffffffff
let r64 b off = Int64.to_int (Bytes.get_int64_le b off)

let reject label msg =
  Coverage.hit ("reject." ^ label);
  raise (Malformed msg)

let field_end f =
  match f.kind with
  | Int U32 | Flag -> f.off + 4
  | Int U63 | Raw64 | Timeout _ -> f.off + 8
  | Str { max; _ } -> f.off + max

let payload_span ~payload_base spec =
  List.fold_left (fun acc f -> max acc (field_end f - payload_base)) 0 spec.fields

(* ---- derived encoder ---- *)

let encode_field b ~base f v =
  match (f.kind, v) with
  | Int U32, I v -> w32 b (f.off + base) v
  | Int U63, I v -> w64 b (f.off + base) v
  | Raw64, I64 v -> Bytes.set_int64_le b (f.off + base) v
  | Flag, B v -> w32 b (f.off + base) (if v then 1 else 0)
  | Timeout _, F v ->
      Bytes.set_int64_le b (f.off + base) (Int64.bits_of_float v)
  | Str { len_off; max; _ }, S s ->
      let n = String.length s in
      if n > max then raise (Oversized { field = f.fname; length = n; limit = max });
      if f.off + base + n > Bytes.length b then
        raise
          (Oversized
             { field = f.fname; length = n; limit = Bytes.length b - f.off - base });
      w32 b (len_off + base) n;
      Bytes.blit_string s 0 b (f.off + base) n
  | _ -> invalid_arg ("Wire_spec.encode_field: value shape mismatch on " ^ f.fname)

let encode_fields spec b ~base m =
  let _, vals = spec.parts m in
  try List.iter2 (fun f v -> encode_field b ~base f v) spec.fields vals
  with Invalid_argument _ when List.length vals <> List.length spec.fields ->
    invalid_arg ("Wire_spec.encode_fields: arity mismatch on " ^ spec.name)

(* ---- derived decoder ---- *)

let decode_field b ~base ~msg_prefix f =
  match f.kind with
  | Int U32 -> I (r32 b (f.off + base))
  | Int U63 -> I (r64 b (f.off + base))
  | Raw64 -> I64 (Bytes.get_int64_le b (f.off + base))
  | Flag -> B (r32 b (f.off + base) <> 0)
  | Timeout { reject = msg } ->
      let v = Int64.float_of_bits (Bytes.get_int64_le b (f.off + base)) in
      (* The timeout travels as raw float bits, so a hostile guest can
         encode NaN, negatives or infinities — any of which would
         corrupt the backend's deadline arithmetic (NaN poisons every
         comparison).  Reject them at decode. *)
      if Float.is_nan v || v < 0. || v = infinity then
        reject ("timeout." ^ f.fname) (msg_prefix ^ msg);
      F v
  | Str { len_off; max; reject = msg } ->
      let n = r32 b (len_off + base) in
      if n > max then reject ("str." ^ f.fname) (msg_prefix ^ msg);
      S (Bytes.sub_string b (f.off + base) n)

let decode_fields spec b ~base ~msg_prefix ~vfd =
  spec.build ~vfd
    (List.map (fun f -> decode_field b ~base ~msg_prefix f) spec.fields)

(* ---- derived sanitizer ---- *)

let int_of_fval name = function
  | I v -> v
  | _ -> invalid_arg ("Wire_spec.validate: non-integer field " ^ name)

let validate spec limits ~prefix m =
  let vfd, vals = spec.parts m in
  let names = List.map (fun f -> f.fname) spec.fields in
  let get field =
    if field = "vfd" then I vfd
    else
      match List.assoc_opt field (List.combine names vals) with
      | Some v -> v
      | None -> invalid_arg ("Wire_spec.validate: unknown field " ^ field)
  in
  let clamped = ref [] in
  let fail field detail =
    Coverage.hit (Printf.sprintf "sanitize.%s.%s" spec.name field);
    Error { field = prefix ^ field; detail }
  in
  let rec run = function
    | [] ->
        if !clamped = [] then Ok m
        else
          let vals' =
            List.map2
              (fun name v ->
                match List.assoc_opt name !clamped with
                | Some v' -> v'
                | None -> v)
              names vals
          in
          Ok (spec.build ~vfd vals')
    | Vrange { field; min; max; detail } :: rest ->
        let v = int_of_fval field (get field) in
        if v < min || v > eval_bound limits max then fail field detail
        else run rest
    | Vwrap { base; len; detail } :: rest ->
        let bv = int_of_fval base (get base) in
        let lv = int_of_fval len (get len) in
        if bv < 0 || bv > max_int - lv then fail base detail else run rest
    | Vtimeout { field; detail } :: rest ->
        let v = match get field with F v -> v | _ -> nan in
        if Float.is_nan v || v < 0. then fail field detail
        else begin
          if v > limits.poll_timeout_cap_us then begin
            Coverage.hit (Printf.sprintf "sanitize.clamp.%s.%s" spec.name field);
            clamped := (field, F limits.poll_timeout_cap_us) :: !clamped
          end;
          run rest
        end
    | Vpath { field; detail } :: rest ->
        let p = match get field with S p -> p | _ -> "" in
        if valid_path p then run rest else fail field detail
  in
  run spec.vchecks

(* ---- derived generator: valid skeletons ---- *)

let range_of_field spec fname =
  List.find_map
    (function
      | Vrange { field; min; max; _ } when field = fname -> Some (min, max)
      | _ -> None)
    spec.vchecks

let path_chars = "abcdefghijklmnopqrstuvwxyz0123456789"

let gen_path rng =
  let n = 1 + Sim.Rng.int rng 12 in
  "/dev/"
  ^ String.init n (fun _ ->
        path_chars.[Sim.Rng.int rng (String.length path_chars)])

(* Bound generated magnitudes: valid skeletons should look like live
   traffic (small vfds, modest lengths), not like boundary probes —
   the mutator drives fields hostile afterwards. *)
let gen_cap = 1 lsl 16

let gen_field spec limits rng f =
  match f.kind with
  | Flag -> B (Sim.Rng.bool rng)
  | Raw64 -> I64 (Sim.Rng.next_int64 rng)
  | Timeout _ -> F (Sim.Rng.float rng (Float.min limits.poll_timeout_cap_us 1e6))
  | Str _ -> S (gen_path rng)
  | Int _ ->
      let lo, hi =
        match range_of_field spec f.fname with
        | Some (min_, max_) ->
            (max 0 min_, min (eval_bound limits max_) gen_cap)
        | None -> (0, gen_cap)
      in
      I (lo + Sim.Rng.int rng (hi - lo + 1))

let generate spec limits rng =
  let vfd = if spec.takes_vfd then Sim.Rng.int rng 8 else 0 in
  spec.build ~vfd (List.map (gen_field spec limits rng) spec.fields)

(* ---- grammar-aware hostile mutation ---- *)

let hostile_field rng b ~base f =
  let off = f.off + base in
  match f.kind with
  | Int U32 | Flag ->
      w32 b off
        (match Sim.Rng.int rng 3 with
        | 0 -> 0xffffffff
        | 1 -> max_vfd + 1 + Sim.Rng.int rng 1024
        | _ -> 0x7fffffff)
  | Int U63 | Raw64 ->
      Bytes.set_int64_le b off
        (match Sim.Rng.int rng 3 with
        | 0 -> 0xFFFF_FFFF_FFFF_FFFFL
        | 1 -> Int64.min_int
        | _ -> Int64.logor 0x8000_0000_0000_0000L (Sim.Rng.next_int64 rng))
  | Timeout _ ->
      Bytes.set_int64_le b off
        (Int64.bits_of_float
           (match Sim.Rng.int rng 4 with
           | 0 -> Float.nan
           | 1 -> -1.0
           | 2 -> Float.infinity
           | _ -> Float.neg_infinity))
  | Str { len_off; _ } ->
      w32 b (len_off + base)
        (match Sim.Rng.int rng 3 with
        | 0 -> 257
        | 1 -> 2000
        | _ -> 0xffffffff)

(* ---- sequential streams (snapshot blobs) ---- *)

module Stream = struct
  type cursor = { buf : string; mutable pos : int }

  let cursor buf = { buf; pos = 0 }

  let need c n =
    if c.pos + n > String.length c.buf then
      raise
        (Malformed
           (Printf.sprintf "truncated snapshot at byte %d (need %d more)" c.pos n))

  type 'a t =
    | U32 : (int -> unit) -> int t
    | I64 : (int -> unit) -> int t
    | Bool : bool t
    | Strc : (int -> unit) -> string t
    | Listc : (int -> unit) * 'a t -> 'a list t
    | Pair : 'a t * 'b t -> ('a * 'b) t
    | Conv : ('a -> 'b) * ('b -> 'a) * 'a t -> 'b t

  let nocheck (_ : int) = ()
  let u32 = U32 nocheck
  let u32c check = U32 check
  let i64 = I64 nocheck
  let i64c check = I64 check
  let boolean = Bool
  let strc check = Strc check
  let listc check elem = Listc (check, elem)
  let pair a b = Pair (a, b)
  let conv dec enc t = Conv (dec, enc, t)

  let w32 b v = Buffer.add_int32_le b (Int32.of_int v)
  let w64 b v = Buffer.add_int64_le b (Int64.of_int v)

  let rec write : type a. Buffer.t -> a t -> a -> unit =
   fun b t v ->
    match t with
    | U32 _ -> w32 b v
    | I64 _ -> w64 b v
    | Bool -> w32 b (if v then 1 else 0)
    | Strc _ ->
        w32 b (String.length v);
        Buffer.add_string b v
    | Listc (_, elem) ->
        w32 b (List.length v);
        List.iter (write b elem) v
    | Pair (ta, tb) ->
        let x, y = v in
        write b ta x;
        write b tb y
    | Conv (_, enc, inner) -> write b inner (enc v)

  let r32 c =
    need c 4;
    let v = Int32.to_int (String.get_int32_le c.buf c.pos) land 0xffffffff in
    c.pos <- c.pos + 4;
    v

  let r64 c =
    need c 8;
    let v = Int64.to_int (String.get_int64_le c.buf c.pos) in
    c.pos <- c.pos + 8;
    v

  let rec read : type a. cursor -> a t -> a =
   fun c t ->
    match t with
    | U32 check ->
        let v = r32 c in
        check v;
        v
    | I64 check ->
        let v = r64 c in
        check v;
        v
    | Bool -> r32 c <> 0
    | Strc check ->
        let n = r32 c in
        check n;
        need c n;
        let s = String.sub c.buf c.pos n in
        c.pos <- c.pos + n;
        s
    | Listc (check, elem) ->
        let n = r32 c in
        check n;
        List.init n (fun _ -> read c elem)
    | Pair (ta, tb) ->
        let x = read c ta in
        let y = read c tb in
        (x, y)
    | Conv (dec, _, inner) -> dec (read c inner)
end
