(** Fleet placement: device-class → shard routing and load accounting.

    A fleet partitions its device classes (and the driver VMs serving
    them) across independent shards (see {!Fleet}).  This module is
    the control-plane map: which shards own which device class, how
    many guest links and operations each shard carries, and — when the
    load skews — which moves would even it out.

    Everything here is ordinary single-domain bookkeeping: routing
    decisions happen before shards start executing, and aggregation
    happens after their domains join, so the map itself is never
    shared between running domains.  All decisions are deterministic:
    least-loaded wins, ties to the lowest shard id. *)

type shard = {
  shard_id : int;
  mutable classes : string list; (* device classes owned, insertion order *)
  mutable links : int; (* guest links routed here *)
  mutable ops : int; (* operations accounted against this shard *)
}

type t = {
  shards : shard array;
  by_class : (string, int list ref) Hashtbl.t; (* owners, ascending ids *)
}

exception No_owner of string
(** Raised by {!route_open} for a device class no shard owns. *)

let create ~shards:n =
  if n <= 0 then invalid_arg "Placement.create: shards must be positive";
  {
    shards =
      Array.init n (fun shard_id -> { shard_id; classes = []; links = 0; ops = 0 });
    by_class = Hashtbl.create 8;
  }

let shard_count t = Array.length t.shards

let check_shard t shard =
  if shard < 0 || shard >= Array.length t.shards then
    invalid_arg (Printf.sprintf "Placement: shard %d out of range" shard)

(** Declare that [shard] serves device class [cls] (it runs a driver
    VM exporting those device files).  Idempotent. *)
let register t ~shard ~cls =
  check_shard t shard;
  let owners =
    match Hashtbl.find_opt t.by_class cls with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.replace t.by_class cls r;
        r
  in
  if not (List.mem shard !owners) then begin
    !owners @ [ shard ] |> List.sort compare |> fun l -> owners := l;
    let s = t.shards.(shard) in
    s.classes <- s.classes @ [ cls ]
  end

let owners t cls =
  match Hashtbl.find_opt t.by_class cls with Some r -> !r | None -> []

(** Route a guest link opening a device of class [cls]: the
    least-loaded owning shard (fewest links; ties → lowest id).  The
    chosen shard's link count is bumped — routing [n] opens spreads
    them round-robin across equally-loaded owners. *)
let route_open t cls =
  match owners t cls with
  | [] -> raise (No_owner cls)
  | first :: rest ->
      let best =
        List.fold_left
          (fun best s ->
            if t.shards.(s).links < t.shards.(best).links then s else best)
          first rest
      in
      t.shards.(best).links <- t.shards.(best).links + 1;
      best

(** A guest link on [shard] closed. *)
let note_close t ~shard =
  check_shard t shard;
  let s = t.shards.(shard) in
  s.links <- max 0 (s.links - 1)

(** Account [n] completed operations against [shard]. *)
let note_ops t ~shard n =
  check_shard t shard;
  t.shards.(shard).ops <- t.shards.(shard).ops + n

let links t ~shard =
  check_shard t shard;
  t.shards.(shard).links

let ops t ~shard =
  check_shard t shard;
  t.shards.(shard).ops

let classes t ~shard =
  check_shard t shard;
  t.shards.(shard).classes

(** Link-count imbalance across shards that own at least one class:
    max/mean (1.0 = perfectly even; nan with no populated shard). *)
let imbalance t =
  let populated =
    Array.to_list t.shards |> List.filter (fun s -> s.classes <> [])
  in
  match populated with
  | [] -> nan
  | _ ->
      let loads = List.map (fun s -> float_of_int s.links) populated in
      let mean =
        List.fold_left ( +. ) 0. loads /. float_of_int (List.length loads)
      in
      if mean = 0. then 1. else List.fold_left Float.max neg_infinity loads /. mean

type move = { mv_src : int; mv_dst : int; mv_count : int }

(* Shards can exchange load only where their class sets intersect:
   a guest's open files belong to a device class, and only an owning
   shard runs a driver VM that can serve them. *)
let share_class t a b =
  List.exists (fun c -> List.mem c t.shards.(b).classes) t.shards.(a).classes

(** Plan link moves to even out the fleet: repeatedly shift one link
    from the most- to the least-loaded pair of shards sharing a device
    class, until every such pair is within one link.  Pure planning —
    executing a move means migrating the guest's session (see
    {!spread_to_replicas} for the intra-shard form built on PR 6's
    checkpoint/restore).  Deterministic: ties → lowest shard id. *)
let rebalance_plan t =
  let links = Array.map (fun s -> s.links) t.shards in
  let moves = Hashtbl.create 8 in
  let progress = ref true in
  while !progress do
    progress := false;
    (* widest eligible (src, dst) gap this round *)
    let best = ref None in
    Array.iter
      (fun src ->
        Array.iter
          (fun dst ->
            if
              src.shard_id <> dst.shard_id
              && share_class t src.shard_id dst.shard_id
              && links.(src.shard_id) > links.(dst.shard_id) + 1
            then
              let gap = links.(src.shard_id) - links.(dst.shard_id) in
              match !best with
              | Some (g, _, _) when g >= gap -> ()
              | _ -> best := Some (gap, src.shard_id, dst.shard_id))
          t.shards)
      t.shards;
    match !best with
    | None -> ()
    | Some (_, src, dst) ->
        links.(src) <- links.(src) - 1;
        links.(dst) <- links.(dst) + 1;
        let key = (src, dst) in
        Hashtbl.replace moves key
          (1 + Option.value ~default:0 (Hashtbl.find_opt moves key));
        progress := true
  done;
  Hashtbl.fold
    (fun (mv_src, mv_dst) mv_count acc -> { mv_src; mv_dst; mv_count } :: acc)
    moves []
  |> List.sort compare

(** Intra-shard rebalance hook: spread a machine's guest sessions from
    its primary driver VM across its live replicas until backend link
    counts are within one, using {!Machine.migrate_guest} (PR 6's
    checkpoint/restore) — so a hot shard grows capacity by booting
    replicas, not by perturbing sibling shards.  Returns the number of
    sessions moved; stops early after [max_moves] or on the first
    non-[Migrated] outcome (the session is still whole on one side
    either way).  Process context, like [migrate_guest]. *)
let spread_to_replicas ?(max_moves = max_int) (m : Machine.t) =
  let backends =
    m.Machine.backend
    :: List.map (fun r -> r.Machine.rep_backend) (Machine.replicas m)
  in
  match backends with
  | [] | [ _ ] -> 0
  | _ ->
      let load b = List.length (Cvd_back.links b) in
      let moved = ref 0 in
      let continue = ref true in
      while !continue && !moved < max_moves do
        let hot =
          List.fold_left (fun a b -> if load b > load a then b else a)
            (List.hd backends) backends
        and cold =
          List.fold_left (fun a b -> if load b < load a then b else a)
            (List.hd backends) backends
        in
        if load hot <= load cold + 1 then continue := false
        else
          match
            List.find_opt
              (fun g -> Cvd_back.has_link hot g.Machine.link)
              (Machine.guests m)
          with
          | None -> continue := false
          | Some g -> (
              match Machine.migrate_guest m g ~dst:cold with
              | Machine.Migrated _ -> incr moved
              | Machine.Migrate_aborted _ | Machine.Migrate_failed_back _ ->
                  continue := false)
      done;
      !moved
