(** Generated per-ioctl argument sanitizers.

    {!Analyzer.Facts} compiles each handler's interface facts into
    {!Analyzer.Facts.check} records; this module interprets them in
    front of the device handler in the backend — the runtime half of
    the paper's analyzer → checking loop (§5.1 + §4).  The guard
    re-reads only the depth-1 argument struct (uncharged, straight
    through the hypervisor: the handler will perform — and be billed
    for — the real grant-checked copy), so a clean workload's
    simulated-time results are bit-identical with guards on or off.

    Error-semantics contract: the guard rejects only {e value} facts
    (ranges, lengths, indices).  An unreadable argument pointer passes
    through so the handler raises the same EFAULT it always did, and
    unknown commands pass through to the driver's own ENOTTY.

    Coverage: a rejection hits [sanitize.<class>.<handler>.<check>]
    and an accepted known command hits [handler.<class>.<handler>],
    giving the hostile campaigns per-class branch feedback. *)

type verdict = Pass | Reject of { handler : string; violated : string }

(* must match Extract.runtime_eval's For bound: a loop count above it
   would be rejected by the Jit interpreter anyway *)
let jit_loop_bound = 65536

let field_value data ~offset ~width =
  if offset < 0 || offset + width > Bytes.length data then None
  else
    Some
      (match width with
      | 4 -> Int32.to_int (Bytes.get_int32_le data offset) land 0xffffffff
      | 8 -> Int64.to_int (Bytes.get_int64_le data offset)
      | 1 -> Char.code (Bytes.get data offset)
      | _ -> 0)

let eval_check ~(limits : Wire_spec.limits) data (c : Analyzer.Facts.check) =
  match c with
  | Analyzer.Facts.Check_range { offset; width; lo; hi; _ } -> (
      match field_value data ~offset ~width with
      | None -> None
      | Some v ->
          let bad_lo = match lo with Some l -> v < l | None -> false in
          let bad_hi = match hi with Some h -> v > h | None -> false in
          if bad_lo || bad_hi then Some (Analyzer.Facts.check_label c) else None)
  | Analyzer.Facts.Check_len { offset; width; scale; loop; _ } -> (
      match field_value data ~offset ~width with
      | None -> None
      | Some v ->
          let bytes = v * scale in
          if
            v < 0 || bytes < 0
            || bytes > limits.Wire_spec.max_transfer_bytes
            || (loop && v > jit_loop_bound)
          then Some (Analyzer.Facts.check_label c)
          else None)

let check ~dev_class ~cmd ~(arg : int64) ~limits ~read : verdict =
  match Analyzer.Classes.fact_for ~dev_class ~cmd with
  | None -> Pass (* not an analyzed command: the driver answers ENOTTY *)
  | Some hf ->
      let checks = Analyzer.Facts.checks hf in
      let verdict =
        if hf.Analyzer.Facts.hf_arg_len = 0 || checks = [] then Pass
        else
          match read ~addr:(Int64.to_int arg) ~len:hf.Analyzer.Facts.hf_arg_len with
          | exception _ -> Pass (* let the handler produce its own EFAULT *)
          | data ->
              let rec go = function
                | [] -> Pass
                | c :: rest -> (
                    match eval_check ~limits data c with
                    | Some label ->
                        Reject
                          { handler = hf.Analyzer.Facts.hf_name; violated = label }
                    | None -> go rest)
              in
              go checks
      in
      (match verdict with
      | Pass ->
          Wire_spec.Coverage.hit
            (Printf.sprintf "handler.%s.%s" dev_class hf.Analyzer.Facts.hf_name)
      | Reject { handler; violated } ->
          Wire_spec.Coverage.hit
            (Printf.sprintf "sanitize.%s.%s.%s" dev_class handler violated));
      verdict

(* ------------------------------------------------------------------ *)
(* Fact-driven hostile generators (the wire_spec grammar idea applied  *)
(* to ioctl argument structures)                                       *)
(* ------------------------------------------------------------------ *)

module Fuzz = struct
  type mem = {
    alloc : int -> int;  (** carve [n] bytes of guest memory, zeroed *)
    write32 : addr:int -> int -> unit;
    write64 : addr:int -> int64 -> unit;
  }

  let cmds ~dev_class =
    match Analyzer.Classes.facts_for dev_class with
    | None -> []
    | Some t -> List.map (fun hf -> hf.Analyzer.Facts.hf_cmd) t.Analyzer.Facts.fd_handlers

  let in_range ~rand (r : Analyzer.Facts.range) ~default =
    match (r.lo, r.hi) with
    | Some l, Some h -> if h > l then l + rand (h - l + 1) else l
    | Some l, None -> l + rand 4
    | None, Some h -> max 0 (h - rand 4)
    | None, None -> default

  let write_field mem ~addr ~width v =
    if width = 8 then mem.write64 ~addr (Int64.of_int v) else mem.write32 ~addr v

  (** Build a well-formed argument for [cmd] in guest memory: every
      direct field respects its fact (pointers point at real, zeroed
      allocations; lengths, indices and scalars sit inside their
      ranges). *)
  let seed ~rand mem ~dev_class ~cmd =
    match Analyzer.Classes.fact_for ~dev_class ~cmd with
    | None -> Int64.of_int (rand 2)
    | Some hf ->
        if hf.Analyzer.Facts.hf_arg_len = 0 then Int64.of_int (rand 2)
        else begin
          let base = mem.alloc (max hf.Analyzer.Facts.hf_arg_len 8) in
          List.iter
            (fun (f : Analyzer.Facts.field_fact) ->
              if f.ff_direct then
                let addr = base + f.ff_offset in
                match f.ff_role with
                | Ptr _ ->
                    let target = mem.alloc 128 in
                    write_field mem ~addr ~width:f.ff_width target
                | Len _ ->
                    write_field mem ~addr ~width:f.ff_width
                      (in_range ~rand f.ff_range ~default:(1 + rand 4))
                | Index _ | Scalar ->
                    write_field mem ~addr ~width:f.ff_width
                      (in_range ~rand f.ff_range ~default:(rand 4)))
            hf.Analyzer.Facts.hf_fields;
          Int64.of_int base
        end

  (** A value violating [c] — [None] when the check admits every
      unsigned value (a [lo = 0]-only range). *)
  let violation_value ~rand ~(limits : Wire_spec.limits) (c : Analyzer.Facts.check) =
    match c with
    | Analyzer.Facts.Check_range { lo; hi; _ } -> (
        match (lo, hi) with
        | Some l, _ when l > 0 && rand 2 = 0 -> Some (l - 1)
        | _, Some h -> Some (h + 1 + rand 1000)
        | Some l, None when l > 0 -> Some (l - 1)
        | _ -> None)
    | Analyzer.Facts.Check_len { scale; loop; _ } ->
        let cap =
          if loop then jit_loop_bound
          else limits.Wire_spec.max_transfer_bytes / max scale 1
        in
        Some (cap + 1 + rand 1000)

  (** Grammar-aware hostile argument: seed a well-formed struct, then
      inject one fact violation (or, for commands with no enforceable
      facts and occasionally otherwise, swap in a wild pointer). *)
  let mutate ~rand ~limits mem ~dev_class ~cmd =
    match Analyzer.Classes.fact_for ~dev_class ~cmd with
    | None -> Int64.of_int (0xdead_0000 + rand 0x1000)
    | Some hf -> (
        let wild () = Int64.of_int (0x7fff_0000 + (rand 0x100 * 0x1000)) in
        let checks = Analyzer.Facts.checks hf in
        if checks = [] || rand 4 = 0 then wild ()
        else
          let arg = seed ~rand mem ~dev_class ~cmd in
          let c = List.nth checks (rand (List.length checks)) in
          let offset, width =
            match c with
            | Analyzer.Facts.Check_range { offset; width; _ }
            | Analyzer.Facts.Check_len { offset; width; _ } ->
                (offset, width)
          in
          match violation_value ~rand ~limits c with
          | None -> wild ()
          | Some v ->
              write_field mem ~addr:(Int64.to_int arg + offset) ~width v;
              arg)
end
