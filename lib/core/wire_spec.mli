(** Declarative wire-format specifications (Narcissus-style, §5.1).

    Every CVD message is declared {e once} as a typed field spec —
    name, slot offset, read width, bounds, clamp/reject policy — and
    four artifacts are derived from that single source of truth:

    - the encoder ({!encode_fields}), which refuses to build a message
      the decoder would reject ({!Oversized}), so encode and decode
      agree about which messages exist;
    - the bounds-checked decoder ({!decode_fields}), raising
      {!Malformed} on any out-of-spec input;
    - the post-decode sanitizer ({!validate}), reproducing the
      hand-written [Proto.validate] field bounds and clamp policies;
    - a seeded random message generator ({!generate}) and a
      grammar-aware hostile mutator ({!hostile_field}) for the fuzz
      suites: valid skeleton, one field driven hostile.

    The DSL has two flavors: fixed-offset {e slot} layouts (the shared
    descriptor page: one field spec per wire word) and sequential
    {e stream} layouts ({!Stream}, for the versioned snapshot blobs).

    Hand-written offset code described each operation three times
    (encode, decode, validate) and the copies drifted; here the spec
    table is the only place a field's layout or bounds appear. *)

(** Raised by derived decoders on any malformed input.  [Proto]
    re-exports this exception as [Proto.Malformed]. *)
exception Malformed of string

(** Raised by derived encoders when a field value cannot be
    represented on the wire (e.g. an over-long [Ropen] path): the
    encoder rejects exactly what the decoder would, instead of
    corrupting adjacent slot words. *)
exception Oversized of { field : string; length : int; limit : int }

(** Sanitization bounds that come from live configuration rather than
    the wire format itself. *)
type limits = {
  max_transfer_bytes : int;
  poll_timeout_cap_us : float;
  grant_capacity : int;
}

(** Universal field value: the meeting point between a message variant
    and its wire representation. *)
type fval =
  | I of int
  | I64 of int64
  | F of float
  | S of string
  | B of bool

(** Integer read policy — the one place wire signedness is decided.
    [U32] reads 4 bytes and masks to a non-negative int (so [< 0]
    checks downstream are dead by construction); [U63] reads 8 bytes
    through [Int64.to_int], so a hostile top-bit-set u64 surfaces as a
    negative int and is caught by the derived sanitizer's range
    check. *)
type width = U32 | U63

(** Upper bounds in validation rules; [Lit] is wire-structural,
    the rest resolve against {!limits} at validation time. *)
type bound = Lit of int | Max_transfer | Max_mmap | Max_vfd | No_bound

type kind =
  | Int of width
  | Raw64  (** opaque 64-bit payload (ioctl arg), no integer policy *)
  | Flag  (** u32, non-zero = true *)
  | Timeout of { reject : string }
      (** float as raw IEEE-754 bits; NaN / negative / infinity are
          rejected at {e decode} with [Malformed reject] — the single
          consolidated poll-timeout policy *)
  | Str of { len_off : int; max : int; reject : string }
      (** u32 length at [len_off], bytes at the field offset; decode
          rejects length > [max] with [Malformed reject], encode
          rejects the same lengths with {!Oversized} *)

type field = { fname : string; off : int; kind : kind }

(** One ordered sanitization rule; rules run in declaration order and
    the first failure names its field. *)
type vcheck =
  | Vrange of { field : string; min : int; max : bound; detail : string }
  | Vwrap of { base : string; len : string; detail : string }
      (** [base < 0 || base > max_int - len]: address range wraps *)
  | Vtimeout of { field : string; detail : string }
      (** reject non-finite/negative, clamp values above
          [limits.poll_timeout_cap_us] to the cap *)
  | Vpath of { field : string; detail : string }  (** {!valid_path} *)

type violation = { field : string; detail : string }

(** The complete declaration of one message form. *)
type 'm spec = {
  op : int;  (** wire opcode / tag *)
  name : string;
  takes_vfd : bool;  (** header vfd word is meaningful *)
  batchable : bool;  (** may ride in a multi-op descriptor *)
  fields : field list;  (** payload, in wire order, singleton offsets *)
  vchecks : vcheck list;  (** sanitizer rules, in evaluation order *)
  build : vfd:int -> fval list -> 'm;
  parts : 'm -> int * fval list;  (** inverse of [build] *)
}

val max_mmap_bytes : int
val max_vfd : int
val eval_bound : limits -> bound -> int

(** Raw little-endian slot words: the byte-level primitives every
    derived slot codec (and [Proto]'s header shims) is built from.
    [r32] masks to non-negative; [r64] is [Int64.to_int] (u63 policy —
    a top-bit-set u64 wraps negative). *)
val w32 : bytes -> int -> int -> unit

val r32 : bytes -> int -> int
val w64 : bytes -> int -> int -> unit
val r64 : bytes -> int -> int

(** The devfs-path predicate shared by live sanitization and
    checkpoint restore. *)
val valid_path : string -> bool

(** [field_end f] is the slot offset just past [f]'s payload bytes. *)
val field_end : field -> int

(** Payload byte span of a batchable record: highest {!field_end}
    relative to [payload_base] (16 for requests, 8 for responses). *)
val payload_span : payload_base:int -> 'm spec -> int

(** Derived encoder: project [m] through [spec.parts] and write every
    field at [off + base].  Raises {!Oversized} per the field specs. *)
val encode_fields : 'm spec -> bytes -> base:int -> 'm -> unit

(** Derived decoder: read every field at [off + base] under its
    policy and rebuild through [spec.build].  [msg_prefix] is
    prepended to policy reject messages (["batch "] inside multi-op
    records, so message strings match the historical decoder). *)
val decode_fields :
  'm spec -> bytes -> base:int -> msg_prefix:string -> vfd:int -> 'm

(** Derived sanitizer: run [spec.vchecks] in order.  On success the
    message is returned unchanged unless a clamp rule fired (then it
    is rebuilt with the clamped fields).  On failure the violation
    field is [prefix ^ field] (["batch[i]."] inside batches). *)
val validate :
  'm spec -> limits -> prefix:string -> 'm -> ('m, violation) result

(** Derived generator: a random message that satisfies every decode
    policy and sanitizer rule under [limits] (a valid skeleton for the
    grammar-aware fuzzer, and the domain for round-trip properties). *)
val generate : 'm spec -> limits -> Sim.Rng.t -> 'm

(** Grammar-aware hostile mutation: overwrite one declared field (at
    [off + base]) in an encoded slot with a value chosen to violate
    that field's own policy — top-bit-set u64s into [U63] words, NaN /
    negative / infinity bits into [Timeout] words, over-limit lengths
    into [Str] length words. *)
val hostile_field : Sim.Rng.t -> bytes -> base:int -> field -> unit

(** Decode-branch / sanitizer coverage registry.  Derived decoders and
    sanitizers report every branch they take ({!hit}) when enabled;
    the fuzz suites use {!distinct} to compare how much of the message
    grammar a campaign reached.  Disabled (zero-cost beyond one load)
    by default. *)
module Coverage : sig
  val enable : unit -> unit
  val disable : unit -> unit
  val reset : unit -> unit
  val hit : string -> unit
  val distinct : unit -> int

  (** [(branch, hits)] pairs, sorted by branch label. *)
  val snapshot : unit -> (string * int) list
end

(** Sequential (cursor-based) wire streams: the snapshot blob flavor
    of the DSL.  A ['a t] declares layout once; {!write} and {!read}
    are the derived encoder/decoder.  Decode-side checks are supplied
    per field and may raise any exception (snapshot keeps its own
    [Malformed]); truncation raises {!Malformed}. *)
module Stream : sig
  type 'a t

  (** 4-byte little-endian, masked non-negative on read. *)
  val u32 : int t

  (** [u32c check]: as {!u32}, running [check] on every decoded
      value. *)
  val u32c : (int -> unit) -> int t

  (** 8-byte little-endian through [Int64.to_int] (top-bit-set wraps
      negative; pair with a [check] that rejects it). *)
  val i64 : int t

  val i64c : (int -> unit) -> int t
  val boolean : bool t

  (** u32 length-prefixed bytes; [check] sees the length before any
      bytes are read. *)
  val strc : (int -> unit) -> string t

  (** u32 count-prefixed repetition; [check] sees the count before any
      element is read. *)
  val listc : (int -> unit) -> 'a t -> 'a list t

  val pair : 'a t -> 'b t -> ('a * 'b) t

  (** [conv dec enc t] maps the raw shape to a richer type; [dec] may
      raise (tag dispatch, cross-field checks). *)
  val conv : ('a -> 'b) -> ('b -> 'a) -> 'a t -> 'b t

  val write : Buffer.t -> 'a t -> 'a -> unit

  type cursor = { buf : string; mutable pos : int }

  val cursor : string -> cursor
  val read : cursor -> 'a t -> 'a
end
