(** Paradice configuration: every tunable of the system and of its
    performance model, with the paper's defaults.

    Latency constants are calibrated against the paper's direct
    measurements (§6.1.1, §6.1.5):
    - a no-op file operation costs ~35 us with interrupts, "most of
      which comes from two inter-VM interrupts", and ~2 us with
      polling;
    - the CVD polls the shared page for 200 us before sleeping;
    - cold-path forwarding (an idle channel, as in the mouse-latency
      experiment) costs substantially more per leg than the hot
      pipelined path, which is why §6.1.5's mouse latency (296 us
      interrupts / 179 us polling) is far above 2 x the no-op cost.
      The cold surcharges below are calibrated to those two numbers. *)

type comm_mode = Interrupts | Polling

type ioctl_id_mode =
  | Analyzer_table (* static entries + JIT slices from the analyzer (§4.1) *)
  | Macro_only (* command-number decoding only: breaks nested-copy ioctls *)

type dispatch =
  | Least_loaded (* full scan of the guest's rings; ties -> lowest index *)
  | Two_choices (* power-of-two-choices: probe two deterministic random
                    rings, take the lighter (ties -> lower index).  O(1)
                    per op instead of O(channels); the classic
                    balls-in-bins result keeps the max load within a
                    constant factor of the full scan. *)

type t = {
  comm_mode : comm_mode;
  (* -- transport -- *)
  interrupt_latency_us : float; (* one inter-VM interrupt, hot path *)
  polling_latency_us : float; (* one shared-page handoff under polling *)
  marshal_us : float; (* serialise/deserialise one message *)
  poll_window_us : float; (* spin window before sleeping (§5.1) *)
  hybrid : bool; (* NAPI-style adaptive notification: an interrupt wakes
                     each side, which then polls the ring while work
                     keeps arriving, suppressing further doorbells until
                     the poll window drains dry *)
  hybrid_poll_window_us : float; (* how long a dry hybrid poll waits for
                                     more work before re-arming doorbells
                                     and sleeping *)
  hybrid_poll_budget_us : float; (* cap on cumulative dry polling per
                                     wakeup episode, so a trickle load
                                     cannot pin a CPU indefinitely *)
  cold_threshold_us : float; (* channel idle longer than this = cold *)
  cold_extra_interrupt_us : float; (* per-leg surcharge, cold, interrupts *)
  cold_extra_polling_us : float; (* per-leg surcharge, cold, polling *)
  (* -- isolation -- *)
  validate_grants : bool; (* fault-isolation runtime checks (§4.1) *)
  data_isolation : bool; (* protected memory regions (§4.2) *)
  hypercall_us : float; (* one hypervisor API call from the driver VM *)
  grant_declare_us : float; (* frontend writes one grant entry *)
  region_switch_per_page_us : float; (* IOMMU remap cost per page (§5.3) *)
  (* -- CVD policy -- *)
  ioctl_id_mode : ioctl_id_mode;
  max_queued_ops : int; (* per-guest wait-queue cap, DoS protection (§5.1) *)
  channels_per_guest : int; (* parallel backend workers per guest, so a
                                blocking read does not stall other files *)
  ring_slots : int; (* descriptor-ring depth per channel: how many RPCs
                        a guest may have in flight on one channel before
                        publishers block (doorbells coalesce across all
                        descriptors queued since the last one) *)
  dispatch : dispatch; (* how the pool routes an op to a ring *)
  dispatch_seed : int64; (* seeds the per-link Two_choices probe stream
                             (derived per guest VM id, so dispatch is
                             deterministic and per-link independent) *)
  (* -- fault containment & recovery (§4.1, §7.2) -- *)
  rpc_timeout_us : float; (* per-attempt RPC deadline; 0 = block forever
                              (blocking reads on quiet devices are
                              legitimate, so deadlines are opt-in) *)
  rpc_retries : int; (* resend attempts after a timed-out RPC before
                         surfacing ETIMEDOUT (at-least-once semantics) *)
  heartbeat_interval_us : float; (* frontend watchdog ping period; 0 = off *)
  heartbeat_miss_limit : int; (* consecutive missed pings before the
                                  driver VM is declared dead *)
  poll_forward_chunk_us : float; (* bounded chunk a forwarded poll blocks
                                     in the backend before re-asking *)
  poll_forward_backoff_us : float; (* frontend sleep between not-ready poll
                                       chunks: bounds the RPC rate of a
                                       never-ready device so one guest poll
                                       cannot spin the ring *)
  (* -- hostile-guest containment (§4, §7.1: the backend does not
        trust the frontend) -- *)
  sanitize_requests : bool; (* run the post-decode sanitization pass on
                                every forwarded operation (ablation knob;
                                the paper's backend always validates) *)
  ioctl_guards : bool; (* run the analyzer-generated per-ioctl argument
                           sanitizers in front of the device handlers
                           (ablation knob for the §5.1-facts → runtime
                           checking loop) *)
  max_transfer_bytes : int; (* largest read/write a guest may request;
                                bounds backend allocation per operation *)
  poll_timeout_cap_us : float; (* forwarded poll timeouts are clamped
                                   into [0, cap]; non-finite or negative
                                   encodings are rejected outright *)
  max_open_vfds : int; (* open virtual descriptors per guest link *)
  max_grant_entries : int; (* outstanding grant-table entries per guest
                               (quota below the physical table capacity) *)
  cpu_budget_us : float; (* backend CPU time one guest may consume per
                             accounting window; 0 = unlimited.  Charged
                             through Kernel.charge, so a guest spinning
                             expensive ioctls is throttled instead of
                             starving siblings' ring service *)
  cpu_budget_window_us : float; (* budget accounting window *)
  quarantine_threshold : int; (* misbehavior score at which the backend
                                  quarantines a guest (revokes grants,
                                  tears down its mappings, detaches its
                                  link); 0 = never quarantine *)
  driver_reboot_us : float; (* driver-VM kill -> serving again (§7.2's
                                "rebooted in seconds") *)
  upgrade_drain_us : float; (* hot upgrade/migration: how long quiesce
                                waits for in-flight operations to drain
                                before parking the stragglers for
                                replay on the successor (bounds the
                                blackout window) *)
  fault_delay_us : float; (* extra latency when the delay fault fires *)
  injector : Sim.Fault_inject.t option; (* deterministic fault plan *)
  tracer : Obs.Trace.t; (* span tracing sink; the disabled sink is a
                            single boolean check per instrumentation
                            point and records nothing *)
  (* -- guest/OS costs -- *)
  sched_wake_us : float; (* waking a blocked application thread *)
  da_irq_extra_us : float; (* interrupt-injection overhead under device
                               assignment (native = 0) *)
  (* -- workload-visible device costs -- *)
  input_delivery_us : float; (* USB + input-core path, event -> evdev queue *)
}

let default =
  {
    comm_mode = Interrupts;
    interrupt_latency_us = 17.3;
    polling_latency_us = 0.9;
    marshal_us = 0.1;
    poll_window_us = 200.;
    hybrid = false;
    hybrid_poll_window_us = 20.;
    hybrid_poll_budget_us = 200.;
    cold_threshold_us = 1_000.;
    cold_extra_interrupt_us = 103.2;
    cold_extra_polling_us = 60.7;
    validate_grants = true;
    data_isolation = false;
    hypercall_us = 0.9;
    grant_declare_us = 0.15;
    region_switch_per_page_us = 0.6;
    ioctl_id_mode = Analyzer_table;
    max_queued_ops = 100;
    channels_per_guest = 4;
    ring_slots = 8;
    dispatch = Least_loaded;
    dispatch_seed = 0x5EEDL;
    rpc_timeout_us = 0.;
    rpc_retries = 2;
    heartbeat_interval_us = 0.;
    heartbeat_miss_limit = 3;
    poll_forward_chunk_us = 5_000.;
    poll_forward_backoff_us = 50.;
    sanitize_requests = true;
    ioctl_guards = true;
    max_transfer_bytes = 4 * 1024 * 1024;
    poll_timeout_cap_us = 60_000_000.;
    max_open_vfds = 128;
    max_grant_entries = 170; (* = Grant_table.capacity: quota off by default *)
    cpu_budget_us = 0.;
    cpu_budget_window_us = 10_000.;
    quarantine_threshold = 50;
    driver_reboot_us = 1_000_000.;
    upgrade_drain_us = 50.;
    fault_delay_us = 50.;
    injector = None;
    tracer = Obs.Trace.disabled;
    sched_wake_us = 38.4;
    da_irq_extra_us = 16.;
    input_delivery_us = 38.4;
  }

let polling = { default with comm_mode = Polling }

(** Hybrid notification: interrupts to wake an idle side, bounded
    polling while the ring stays busy.  Steady-state cost approaches
    the polling figure without a dedicated polling CPU per channel. *)
let hybrid = { default with hybrid = true }

let with_data_isolation t = { t with data_isolation = true }

(** The DSM-based cross-machine configuration sketched in Â§8's future
    work: guest VM and driver VM on separate physical hosts, the
    shared pages kept coherent over the network.  Each signalling leg
    then costs a network one-way plus the DSM protocol; this preset
    models a 10GbE RDMA-class interconnect. *)
let remote_dsm =
  {
    default with
    interrupt_latency_us = 65.0; (* one-way network + DSM coherence *)
    polling_latency_us = 55.0; (* polling cannot beat the wire *)
    cold_extra_interrupt_us = 103.2;
    cold_extra_polling_us = 103.2;
  }

(** One-way transfer latency for the current mode (hot path). *)
let leg_latency t =
  match t.comm_mode with
  | Interrupts -> t.interrupt_latency_us
  | Polling -> t.polling_latency_us

let cold_extra t =
  match t.comm_mode with
  | Interrupts -> t.cold_extra_interrupt_us
  | Polling -> t.cold_extra_polling_us

let mode_name t =
  match (t.comm_mode, t.hybrid) with
  | Interrupts, false -> "interrupts"
  | Interrupts, true -> "hybrid"
  | Polling, false -> "polling"
  | Polling, true -> "polling+hybrid"
