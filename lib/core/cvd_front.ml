(** The CVD frontend (§3.1, §5.1).

    Lives in the guest kernel.  For every exported device it creates a
    {e virtual device file} in the guest's /dev whose file-operation
    handlers (i) identify and declare the operation's legitimate memory
    operations in the grant table (§4.1) — from the syscall arguments
    for read/write/mmap, from the analyzer's entries or command-number
    macros for ioctl — and (ii) forward the operation over the channel
    pool to the backend. *)

open Oskit

type session = Healthy | Faulted

type fault_stats = {
  sessions_faulted : int;
  grants_revoked : int;
  mappings_torn : int;
  heartbeat_misses : int;
  last_faulted_at : float;
  last_teardown_us : float;
}

type t = {
  kernel : Kernel.t; (* the guest's kernel *)
  hyp : Hypervisor.Hyp.t;
  guest_vm : Hypervisor.Vm.t;
  mutable pool : Chan_pool.t; (* replaced on reattach after a reboot *)
  grant_table : Hypervisor.Grant_table.t;
  config : Config.t;
  (* analyzer output per device class, keyed by devfs path *)
  entries : (string, Analyzer.Extract.t) Hashtbl.t;
  vfds : (int, int) Hashtbl.t; (* guest file_id -> backend vfd *)
  (* guest files whose backend session died under them: their vfds are
     meaningless, operations fail ENODEV until the file is reopened.
     The value records why the file went stale, so callers can tell a
     retryable staleness (driver VM rebooted: reopen succeeds) from a
     hard one (session still down). *)
  stale_vfds : (int, string) Hashtbl.t;
  mutable fasync_files : Defs.file list; (* forward notifications here *)
  mutable session : session;
  (* Planned-handoff gate (hot upgrade / migration): while [paused],
     forwarded operations park on [resume_wq] instead of touching the
     transport; {!resume} wakes them onto the successor pool.  Unlike
     a fault, pausing is invisible to the caller — only added latency. *)
  mutable paused : bool;
  resume_wq : Wait_queue.t;
  mutable ops_parked : int; (* stragglers replayed across a handoff *)
  mutable ops_forwarded : int;
  mutable jit_evaluations : int;
  mutable hb_stop : bool; (* watchdog shutdown flag *)
  mutable hb_suspended : bool; (* quiesce: pings would time out, skip them *)
  mutable fstats : fault_stats;
}

let stats t = (t.ops_forwarded, t.jit_evaluations, Chan_pool.stats t.pool)
let session t = t.session
let fault_stats t = t.fstats

(* The notification dispatcher: deliver backend messages as SIGIO on
   the guest's subscribed virtual files.  One dispatcher per attached
   pool; it exits when its channel dies (driver-VM crash) and a fresh
   one is spawned on reattach. *)
let spawn_notify_dispatcher t pool =
  Sim.Engine.spawn (Kernel.engine t.kernel) ~name:"cvd-frontend-notify" (fun () ->
      let chan = Chan_pool.notify_channel pool in
      let rec loop () =
        match Channel.next_notification chan with
        | None -> () (* channel dead: dispatcher exits *)
        | Some _ ->
            List.iter Vfs.kill_fasync t.fasync_files;
            loop ()
      in
      loop ())

(** Fault the session: the driver VM is dead (or presumed so).  All
    open virtual files turn stale (operations fail ENODEV), every
    outstanding grant is revoked and every hypervisor-installed
    cross-VM mapping into this guest torn down — nothing the dead
    driver VM held may remain usable (§4.1: driver-VM crashes must not
    corrupt the guest).  Idempotent; process context. *)
let fault_session t ~reason =
  match t.session with
  | Faulted -> ()
  | Healthy ->
      t.session <- Faulted;
      (* a fault during a planned handoff aborts the pause: parked
         operations must wake and fail, not hang forever *)
      t.paused <- false;
      Wait_queue.wake_all t.resume_wq;
      (* close every span the dead session left open — no trace state
         may leak into (or misattribute time across) a reattach *)
      ignore
        (Obs.Trace.abort_open t.config.Config.tracer
           ~reason:(String.map (fun c -> if c = ' ' then '_' else c) reason));
      let began = Sim.Engine.now (Kernel.engine t.kernel) in
      (* all open virtual files lose their backend descriptors *)
      Hashtbl.iter
        (fun file_id _ -> Hashtbl.replace t.stale_vfds file_id reason)
        t.vfds;
      Hashtbl.reset t.vfds;
      t.fasync_files <- [];
      let revoked = Hypervisor.Grant_table.revoke_all t.grant_table in
      let torn = Hypervisor.Hyp.teardown_vm_mappings t.hyp ~target:t.guest_vm in
      (* one hypercall per destroyed mapping plus the revoke sweep *)
      Kernel.charge t.kernel
        (float_of_int (1 + torn) *. t.config.Config.hypercall_us);
      let finished = Sim.Engine.now (Kernel.engine t.kernel) in
      t.fstats <-
        {
          t.fstats with
          sessions_faulted = t.fstats.sessions_faulted + 1;
          grants_revoked = t.fstats.grants_revoked + revoked;
          mappings_torn = t.fstats.mappings_torn + torn;
          last_faulted_at = began;
          last_teardown_us = finished -. began;
        }

(** Re-establish a faulted session over a fresh channel pool (the
    driver VM rebooted, §7.2).  Stale files stay stale — the guest
    must reopen them — but new opens work immediately. *)
let reattach t ~pool =
  t.pool <- pool;
  t.session <- Healthy;
  spawn_notify_dispatcher t pool

(* ---- planned handoff: quiesce / resume (hot upgrade, migration) ---- *)

(** Stop issuing onto the transport: operations arriving from here on
    park on [resume_wq].  In-flight operations are unaffected — the
    caller (Machine) drains or retires them separately. *)
let quiesce t = t.paused <- true

let is_paused t = t.paused

(** Operations replayed across a planned handoff so far. *)
let ops_parked t = t.ops_parked

(** Wake the parked operations onto the (optionally new) pool.  [pool]
    present installs the successor transport and spawns its
    notification dispatcher; absent resumes on the {e current} pool —
    the soft-rollback path of an aborted handoff, where the old
    transport never died and already has a dispatcher. *)
let resume ?pool t =
  (match pool with
  | Some p ->
      t.pool <- p;
      spawn_notify_dispatcher t p
  | None -> ());
  t.paused <- false;
  Wait_queue.wake_all t.resume_wq

(* Forward through the pause gate.  A {!Channel.Retired} straggler —
   the transport was swapped while the operation was in flight — parks
   and replays on the successor: at-least-once across a handoff, same
   contract as RPC retries.  If the session faults instead of
   resuming, a parked operation fails EIO (the op was possibly
   executed: EIO, not ENODEV, exactly as a mid-operation transport
   death). *)
let rec pool_rpc t ~parked req_bytes =
  while t.paused do
    Wait_queue.sleep t.resume_wq
  done;
  if t.session = Faulted then
    if parked then Errno.fail Errno.EIO "driver VM died under a parked operation"
    else Errno.fail Errno.ENODEV "driver VM session faulted";
  try Chan_pool.rpc t.pool req_bytes
  with Channel.Retired ->
    t.ops_parked <- t.ops_parked + 1;
    pool_rpc t ~parked:true req_bytes

(* The watchdog: ping the backend with a no-op under a deadline; after
   [heartbeat_miss_limit] consecutive misses (or a transport EIO,
   which is definitive) declare the driver VM dead.  Idles while the
   session is faulted and resumes once reattached. *)
let heartbeat_request = Proto.encode_request ~grant_ref:0 ~pid:0 Proto.Rnoop

let spawn_watchdog t =
  let interval = t.config.Config.heartbeat_interval_us in
  if interval > 0. then
    Sim.Engine.spawn (Kernel.engine t.kernel) ~name:"cvd-watchdog" (fun () ->
        let rec loop misses =
          if not t.hb_stop then begin
            Sim.Engine.wait interval;
            if not t.hb_stop then
              match t.session with
              | Faulted -> loop 0
              | Healthy when t.hb_suspended ->
                  (* planned handoff in progress: the backend is
                     legitimately not answering; a ping now would count
                     a miss against a healthy driver VM *)
                  loop 0
              | Healthy -> (
                  match Chan_pool.rpc ~timeout_us:interval t.pool heartbeat_request with
                  | (_ : bytes) -> loop 0
                  | exception Channel.Retired ->
                      (* transport swapped under the ping: not a fault *)
                      loop 0
                  | exception Errno.Unix_error (Errno.EIO, _) ->
                      fault_session t ~reason:"heartbeat: transport dead";
                      loop 0
                  | exception (Errno.Unix_error (Errno.ETIMEDOUT, _) | Chan_pool.Busy)
                    ->
                      t.fstats <-
                        {
                          t.fstats with
                          heartbeat_misses = t.fstats.heartbeat_misses + 1;
                        };
                      if misses + 1 >= t.config.Config.heartbeat_miss_limit then begin
                        fault_session t ~reason:"heartbeat: driver VM unresponsive";
                        loop 0
                      end
                      else loop (misses + 1))
          end
        in
        loop 0)

let stop_watchdog t = t.hb_stop <- true

(** Suspend heartbeat pings for a planned quiesce: however long the
    handoff takes, no misses accrue and the watchdog cannot declare a
    healthy driver VM dead mid-upgrade. *)
let suspend_watchdog t = t.hb_suspended <- true

let resume_watchdog t = t.hb_suspended <- false

let create ~kernel ~hyp ~guest_vm ~pool ~config =
  let grant_table = Hypervisor.Hyp.setup_grant_table hyp guest_vm in
  Hypervisor.Grant_table.set_quota grant_table config.Config.max_grant_entries;
  let t =
    {
      kernel;
      hyp;
      guest_vm;
      pool;
      grant_table;
      config;
      entries = Hashtbl.create 8;
      vfds = Hashtbl.create 16;
      stale_vfds = Hashtbl.create 16;
      fasync_files = [];
      session = Healthy;
      paused = false;
      resume_wq = Wait_queue.create (Kernel.engine kernel);
      ops_parked = 0;
      ops_forwarded = 0;
      jit_evaluations = 0;
      hb_stop = false;
      hb_suspended = false;
      fstats =
        {
          sessions_faulted = 0;
          grants_revoked = 0;
          mappings_torn = 0;
          heartbeat_misses = 0;
          last_faulted_at = nan;
          last_teardown_us = nan;
        };
    }
  in
  spawn_notify_dispatcher t pool;
  spawn_watchdog t;
  t

(* ---- grant management ---- *)

(** Declare the operation's legitimate memory operations; returns the
    grant reference (or 0 when validation is disabled for ablation).
    A guest past its outstanding-entry quota sees ENOMEM, exactly as a
    real kernel out of grant slots would. *)
let declare t ops =
  let declare_checked ops =
    try Hypervisor.Grant_table.declare t.grant_table ops
    with Hypervisor.Grant_table.Quota_exceeded ->
      Errno.fail Errno.ENOMEM "grant quota exhausted"
  in
  if not t.config.Config.validate_grants then 0
  else if ops = [] then
    (* groups cannot be empty; declare a harmless zero-length entry *)
    declare_checked [ Hypervisor.Grant_table.Copy_from_user { addr = 0; len = 0 } ]
  else begin
    Kernel.charge t.kernel
      (float_of_int (List.length ops) *. t.config.Config.grant_declare_us);
    declare_checked ops
  end

let release t grant_ref =
  if t.config.Config.validate_grants then
    Hypervisor.Grant_table.release t.grant_table grant_ref

(* ---- forwarding core ---- *)

let errno_of_code code =
  match Errno.of_code code with Some e -> e | None -> Errno.EIO

(** Forward one operation: declare, register the issuing process with
    the hypervisor, rpc, release, decode.

    Error paths are kept distinct: a {e decoded} [Rerr] is the remote
    driver failing an operation (normal; surfaced to the caller); a
    {e raised} EIO is the transport itself dying mid-exchange, which
    faults the whole session; ETIMEDOUT (deadline exhausted) surfaces
    to the caller without faulting — one wedged worker is not a dead
    driver VM, the watchdog decides that. *)
let forward t (task : Defs.task) ~ops req : Proto.response =
  if t.session = Faulted then
    Errno.fail Errno.ENODEV "driver VM session faulted";
  t.ops_forwarded <- t.ops_forwarded + 1;
  let tracer = t.config.Config.tracer in
  let trace = Obs.Trace.mint_id tracer in
  let op_sp =
    Obs.Trace.span_begin tracer ~trace ~lane:Obs.Trace.Frontend ~cat:"op"
      ~name:(Proto.request_name req) ()
  in
  let run () =
    let decl_sp =
      Obs.Trace.span_begin tracer ~trace ~lane:Obs.Trace.Frontend ~cat:"stage"
        ~name:"front:declare" ()
    in
    Hypervisor.Hyp.register_process t.hyp t.guest_vm ~pid:task.Defs.pid
      ~pt:task.Defs.pt;
    let grant_ref = declare t ops in
    Obs.Trace.span_end tracer decl_sp;
    Fun.protect
      ~finally:(fun () ->
        (* after a transport death the table was already revoked wholesale *)
        if t.session = Healthy then release t grant_ref)
      (fun () ->
        let req_bytes =
          try Proto.encode_request ~grant_ref ~pid:task.Defs.pid req
          with Proto.Oversized { field; length; limit } ->
            (* the derived encoder refuses what the decoder would
               reject (e.g. an over-long open path) instead of
               corrupting adjacent slot words *)
            Errno.fail Errno.ENAMETOOLONG
              (Printf.sprintf "%s: %d bytes exceeds wire limit %d" field
                 length limit)
        in
        Proto.set_trace req_bytes trace;
        let resp_bytes =
          try pool_rpc t ~parked:false req_bytes with
          | Chan_pool.Busy ->
              Errno.fail Errno.EBUSY "per-guest operation cap reached"
          | Errno.Unix_error (Errno.EIO, _) as e ->
              fault_session t ~reason:"transport failure mid-operation";
              raise e
        in
        Proto.decode_response resp_bytes)
  in
  match run () with
  | resp ->
      Obs.Trace.span_end tracer op_sp;
      resp
  | exception exn ->
      Obs.Trace.span_end ~status:"error" tracer op_sp;
      raise exn

let int_result = function
  | Proto.Rok v -> v
  | Proto.Rerr code -> Errno.fail (errno_of_code code) "remote operation failed"
  | Proto.Rpoll_reply _ -> Errno.fail Errno.EIO "unexpected poll reply"
  | Proto.Rbatch_reply _ -> Errno.fail Errno.EIO "unexpected batch reply"

(** Forward an io_uring-style multi-op batch: every request rides one
    ring slot / one doorbell and is executed sequentially by the
    backend.  Returns one response per sub-op, in submission order (a
    failing sub-op occupies its reply slot as [Rerr]; it does not abort
    the batch).  Only small fixed-size data-path operations are
    batchable — see {!Proto.Rbatch}.  [ops] declares the grants every
    sub-op may touch, under one grant_ref, exactly as for a singleton
    forward. *)
let forward_batch t (task : Defs.task) ~ops reqs : Proto.response list =
  match forward t task ~ops (Proto.Rbatch reqs) with
  | Proto.Rbatch_reply subs ->
      if List.length subs <> List.length reqs then
        Errno.fail Errno.EIO "batch reply arity mismatch"
      else subs
  | Proto.Rerr code -> Errno.fail (errno_of_code code) "remote batch failed"
  | Proto.Rok _ | Proto.Rpoll_reply _ ->
      Errno.fail Errno.EIO "unexpected batch reply shape"

let vfd_of t (file : Defs.file) =
  match Hashtbl.find_opt t.stale_vfds file.Defs.file_id with
  | Some reason ->
      Errno.fail Errno.ENODEV
        ("backend session died under this file (" ^ reason ^ ")")
  | None -> (
      match Hashtbl.find_opt t.vfds file.Defs.file_id with
      | Some vfd -> vfd
      | None -> Errno.fail Errno.EINVAL "virtual file has no backend descriptor")

(** Convenience over {!forward_batch}: issue [cmds] (pointer-free
    ioctls such as netmap txsync or the no-op probe) on one open file
    as a single multi-op descriptor.  Returns the per-sub-op int
    results in submission order; the first failing sub-op raises its
    errno. *)
let batch_ioctl t task file cmds =
  let vfd = vfd_of t file in
  let reqs = List.map (fun (cmd, arg) -> Proto.Rioctl { vfd; cmd; arg }) cmds in
  forward_batch t task ~ops:[] reqs
  |> List.map (function
       | Proto.Rok v -> v
       | Proto.Rerr code ->
           Errno.fail (errno_of_code code) "batched ioctl sub-op failed"
       | Proto.Rpoll_reply _ | Proto.Rbatch_reply _ ->
           Errno.fail Errno.EIO "batched ioctl: unexpected sub-op reply")

(** Where a guest file stands with respect to its backend session. *)
type file_status =
  | Live  (** has a working backend descriptor *)
  | Stale_retryable of string
      (** the session under it died but has since been re-established:
          operations fail ENODEV, but a fresh [open] succeeds — the
          "close and reopen me" signal *)
  | Stale_dead of string
      (** stale and the session is still down: reopening fails too *)
  | Unknown  (** never opened here (or already released) *)

let file_status t (file : Defs.file) =
  match Hashtbl.find_opt t.stale_vfds file.Defs.file_id with
  | Some reason ->
      if t.session = Healthy then Stale_retryable reason else Stale_dead reason
  | None -> if Hashtbl.mem t.vfds file.Defs.file_id then Live else Unknown

(* ---- ioctl memory-operation identification (§4.1) ---- *)

let ioctl_ops t (task : Defs.task) ~path ~cmd ~arg =
  let arg_int = Int64.to_int arg in
  match t.config.Config.ioctl_id_mode with
  | Config.Macro_only -> Analyzer.Cmd_macro.ops_of_cmd cmd ~arg:arg_int
  | Config.Analyzer_table -> (
      match Hashtbl.find_opt t.entries path with
      | None -> Analyzer.Cmd_macro.ops_of_cmd cmd ~arg:arg_int
      | Some table ->
          (match Analyzer.Extract.entry_for table cmd with
          | Some (Analyzer.Extract.Jit _) -> t.jit_evaluations <- t.jit_evaluations + 1
          | _ -> ());
          Analyzer.Extract.ops_for table ~cmd ~arg:arg_int
            ~read_user:(fun ~addr ~len -> Task.read_mem task ~gva:addr ~len))

(* ---- the virtual device file ---- *)

(** Create the virtual device file for an exported device.  [entries]
    is the analyzer's table for the device's driver (ioctl-capable
    classes); [kinds] the operations the real driver implements. *)
let export t ~path ~cls ~driver ?(exclusive = false) ?entries ~kinds () =
  (match entries with
  | Some e -> Hashtbl.replace t.entries path e
  | None -> ());
  (* the guest kernel must know every forwarded operation kind *)
  List.iter
    (fun k ->
      if not (Os_flavor.supports (Kernel.flavor t.kernel) k) then
        invalid_arg
          (Printf.sprintf "device %s needs op %s, unsupported by %s" path
             (Os_flavor.op_kind_name k)
             (Os_flavor.name (Kernel.flavor t.kernel))))
    kinds;
  let remote_fail resp = int_result resp in
  let ops =
    {
      Defs.fop_kinds = kinds;
      fop_open =
        (fun task file ->
          let vfd =
            remote_fail (forward t task ~ops:[] (Proto.Ropen { path }))
          in
          Hashtbl.replace t.vfds file.Defs.file_id vfd);
      fop_release =
        (fun task file ->
          if Hashtbl.mem t.stale_vfds file.Defs.file_id then begin
            (* the backend died under this file: nothing to tell a dead
               (or rebooted and amnesiac) driver VM, clean up locally
               so close() succeeds and the slot is reusable *)
            Hashtbl.remove t.stale_vfds file.Defs.file_id;
            t.fasync_files <- List.filter (fun f -> f != file) t.fasync_files
          end
          else begin
            let vfd = vfd_of t file in
            Hashtbl.remove t.vfds file.Defs.file_id;
            t.fasync_files <- List.filter (fun f -> f != file) t.fasync_files;
            ignore (remote_fail (forward t task ~ops:[] (Proto.Rrelease { vfd })))
          end);
      fop_read =
        (fun task file ~buf ~len ->
          let ops = [ Hypervisor.Grant_table.Copy_to_user { addr = buf; len } ] in
          remote_fail
            (forward t task ~ops (Proto.Rread { vfd = vfd_of t file; buf; len })));
      fop_write =
        (fun task file ~buf ~len ->
          let ops = [ Hypervisor.Grant_table.Copy_from_user { addr = buf; len } ] in
          remote_fail
            (forward t task ~ops (Proto.Rwrite { vfd = vfd_of t file; buf; len })));
      fop_ioctl =
        (fun task file ~cmd ~arg ->
          let ops = ioctl_ops t task ~path ~cmd ~arg in
          remote_fail
            (forward t task ~ops (Proto.Rioctl { vfd = vfd_of t file; cmd; arg })));
      fop_mmap =
        (fun task file vma ->
          let gva = vma.Defs.vma_start and len = vma.Defs.vma_len in
          (* create all guest page-table levels except the last (§5.2) *)
          Memory.Guest_pt.prepare_range task.Defs.pt ~gva ~len;
          let ops = [ Hypervisor.Grant_table.Map_page { addr = gva; len } ] in
          ignore
            (remote_fail
               (forward t task ~ops
                  (Proto.Rmmap
                     { vfd = vfd_of t file; gva; len; pgoff = vma.Defs.vma_pgoff }))));
      fop_fault =
        (fun task file _vma ~gva ->
          Memory.Guest_pt.prepare_range task.Defs.pt ~gva ~len:Memory.Addr.page_size;
          let ops =
            [ Hypervisor.Grant_table.Map_page { addr = gva; len = Memory.Addr.page_size } ]
          in
          ignore
            (remote_fail (forward t task ~ops (Proto.Rfault { vfd = vfd_of t file; gva }))));
      fop_vma_close =
        (fun task file vma ->
          ignore
            (remote_fail
               (forward t task ~ops:[]
                  (Proto.Rmunmap
                     {
                       vfd = vfd_of t file;
                       gva = vma.Defs.vma_start;
                       len = vma.Defs.vma_len;
                     }))));
      fop_poll =
        (fun task file ~want_in ~want_out ->
          (* The backend blocks inside the driver's poll.  Forward the
             caller's real interest mask in bounded chunks and loop
             until an event the caller asked about is ready, so the
             guest pays one forwarded operation per ready poll syscall,
             as the netmap batching analysis assumes (§6.1.2).  Between
             not-ready chunks the guest backs off adaptively: under
             hybrid notification it starts at the hybrid poll window
             (sleeping the full fixed backoff would double-pay the
             wakeup the window just saved), doubling on each not-ready
             chunk up to [poll_forward_backoff_us] — the spin bound
             that keeps a never-ready device from starving the ring.
             With hybrid off the backoff is the old constant from the
             first chunk, unchanged. *)
          let vfd = vfd_of t file in
          let cap = t.config.Config.poll_forward_backoff_us in
          let initial =
            if t.config.Config.hybrid then
              Float.min t.config.Config.hybrid_poll_window_us cap
            else cap
          in
          let rec ask backoff =
            match
              forward t task ~ops:[]
                (Proto.Rpoll
                   {
                     vfd;
                     want_in;
                     want_out;
                     timeout_us = t.config.Config.poll_forward_chunk_us;
                   })
            with
            | Proto.Rpoll_reply { pollin; pollout } ->
                if (want_in && pollin) || (want_out && pollout) then
                  { Defs.pollin; pollout; poll_wq = None }
                else begin
                  if backoff > 0. then Sim.Engine.wait backoff;
                  ask (if backoff <= 0. then cap else Float.min (backoff *. 2.) cap)
                end
            | other ->
                ignore (int_result other);
                Defs.no_poll
          in
          ask initial);
      fop_fasync =
        (fun task file ~on ->
          (* mutate the notification list only once the backend has
             accepted the registration: a failed Rfasync must not leave
             the frontend delivering (or dropping) SIGIO for a file the
             driver never subscribed *)
          match forward t task ~ops:[] (Proto.Rfasync { vfd = vfd_of t file; on }) with
          | Proto.Rok _ ->
              if on then begin
                if not (List.memq file t.fasync_files) then
                  t.fasync_files <- file :: t.fasync_files
              end
              else t.fasync_files <- List.filter (fun f -> f != file) t.fasync_files
          | (Proto.Rerr _ | Proto.Rpoll_reply _ | Proto.Rbatch_reply _) as resp
            ->
              ignore (remote_fail resp));
    }
  in
  let dev = Defs.make_device ~path ~cls ~driver:("cvd/" ^ driver) ~exclusive ops in
  Devfs.register (Kernel.devfs t.kernel) dev;
  dev
