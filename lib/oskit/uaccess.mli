(** User-memory access for drivers, with the wrapper stubs of §5.2:
    when the calling thread is marked as serving a remote guest
    process, the operations redirect to the hypervisor memory-op API;
    otherwise they act locally.  Drivers stay unmodified. *)

open Defs

(** Observation hook: records every driver memory operation (used by
    the analyzer's driver-agreement tests and by tracing). *)
type recorded_op =
  | Rec_copy_from of { uaddr : int; len : int }
  | Rec_copy_to of { uaddr : int; len : int }
  | Rec_insert_pfn of { gva : int }

val with_recorder : (recorded_op -> unit) -> (unit -> 'a) -> 'a

(** Driver reads/writes the current process's memory.  Raise
    [Errno.Unix_error EFAULT] on bad pointers or rejected grants. *)
val copy_from_user : task -> uaddr:int -> len:int -> bytes

val copy_to_user : task -> uaddr:int -> bytes -> unit

(** Zero-copy variants against a caller-supplied buffer — no
    intermediate allocation, local and remote alike. *)
val copy_from_user_into :
  task -> uaddr:int -> dst:bytes -> dst_off:int -> len:int -> unit

val copy_to_user_from :
  task -> uaddr:int -> src:bytes -> src_off:int -> len:int -> unit
val copy_from_user_u32 : task -> uaddr:int -> int
val copy_to_user_u32 : task -> uaddr:int -> int -> unit
val copy_from_user_u64 : task -> uaddr:int -> int64
val copy_to_user_u64 : task -> uaddr:int -> int64 -> unit

(** Map one page (named by its driver-VM guest-physical address) into
    the current process at [gva] — the [vm_insert_pfn] analogue. *)
val insert_pfn : task -> gva:int -> page_gpa:int -> perms:Memory.Perm.t -> unit

(** Tear down an {!insert_pfn} mapping. *)
val remove_pfn : task -> gva:int -> unit

(** The kernel entry points the wrapper stubs intercept (the paper
    modified 13, §5.2). *)
val wrapped_kernel_functions : string list
