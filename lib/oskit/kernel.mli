(** A simulated Unix-like kernel instance (one per VM). *)

type costs = { syscall_us : float; context_switch_us : float }

val zero_costs : costs
val default_costs : costs

type t

val create :
  engine:Sim.Engine.t ->
  vm:Hypervisor.Vm.t ->
  flavor:Os_flavor.t ->
  ?costs:costs ->
  unit ->
  t

val engine : t -> Sim.Engine.t
val vm : t -> Hypervisor.Vm.t
val flavor : t -> Os_flavor.t
val devfs : t -> Devfs.t
val spawn_task : t -> name:string -> Defs.task

(** Allocate a file id ({!Vfs.openf} uses this); unique per kernel,
    the scope every consumer keys by. *)
val alloc_file_id : t -> int

(** Charge simulated time (no-op when zero, so functional tests can
    run outside the engine). *)
val charge : t -> float -> unit

val charge_syscall : t -> unit

(** The per-syscall charge of this kernel's cost model (what one
    {!charge_syscall} costs) — lets callers account CPU budgets. *)
val syscall_cost : t -> float
