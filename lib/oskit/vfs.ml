(** The VFS layer: system calls on device files (§2.1).

    Applications call these; the kernel dispatches to the device
    driver's file-operation handlers.  Driver errors ({!Errno.Unix_error})
    are converted to [Error] results, mirroring negative syscall
    returns. *)

open Defs

type 'a result = ('a, Errno.t) Stdlib.result

let wrap f = try Ok (f ()) with Errno.Unix_error (errno, _) -> Error errno

let lookup_fd task fd =
  match Hashtbl.find_opt task.fds fd with
  | Some file when not file.closed -> file
  | Some _ | None -> Errno.fail Errno.EINVAL "bad file descriptor"

(** Open a device file. *)
let openf kernel task path : int result =
  Kernel.charge_syscall kernel;
  wrap (fun () ->
      match Devfs.lookup (Kernel.devfs kernel) path with
      | None -> Errno.fail Errno.ENODEV ("no such device: " ^ path)
      | Some dev ->
          if dev.exclusive && dev.open_count > 0 then
            Errno.fail Errno.EBUSY (path ^ " is single-open");
          let file =
            {
              file_id = Kernel.alloc_file_id kernel;
              dev;
              opener = task;
              nonblock = false;
              fasync_subscribers = [];
              closed = false;
            }
          in
          dev.ops.fop_open task file;
          dev.open_count <- dev.open_count + 1;
          let fd = task.next_fd in
          task.next_fd <- fd + 1;
          Hashtbl.replace task.fds fd file;
          fd)

let close kernel task fd : unit result =
  Kernel.charge_syscall kernel;
  wrap (fun () ->
      let file = lookup_fd task fd in
      file.dev.ops.fop_release task file;
      file.closed <- true;
      file.dev.open_count <- file.dev.open_count - 1;
      file.fasync_subscribers <- [];
      Hashtbl.remove task.fds fd)

let set_nonblock _kernel task fd ~nonblock : unit result =
  wrap (fun () -> (lookup_fd task fd).nonblock <- nonblock)

let read kernel task fd ~buf ~len : int result =
  Kernel.charge_syscall kernel;
  wrap (fun () ->
      let file = lookup_fd task fd in
      file.dev.ops.fop_read task file ~buf ~len)

let write kernel task fd ~buf ~len : int result =
  Kernel.charge_syscall kernel;
  wrap (fun () ->
      let file = lookup_fd task fd in
      file.dev.ops.fop_write task file ~buf ~len)

let ioctl kernel task fd ~cmd ~arg : int result =
  Kernel.charge_syscall kernel;
  wrap (fun () ->
      let file = lookup_fd task fd in
      file.dev.ops.fop_ioctl task file ~cmd ~arg)

(** Map [len] bytes of the device at page offset [pgoff] into the
    process; returns the chosen virtual address.  The driver's mmap
    handler may populate pages eagerly with [insert_pfn] or leave them
    to the fault handler. *)
let mmap kernel task fd ~len ~pgoff : int result =
  Kernel.charge_syscall kernel;
  wrap (fun () ->
      if len <= 0 || len mod Memory.Addr.page_size <> 0 then
        Errno.fail Errno.EINVAL "mmap: length must be a positive page multiple";
      let file = lookup_fd task fd in
      let gva = task.mmap_cursor in
      task.mmap_cursor <- gva + len + Memory.Addr.page_size;
      let vma = { vma_start = gva; vma_len = len; vma_file = file; vma_pgoff = pgoff } in
      file.dev.ops.fop_mmap task file vma;
      task.vmas <- vma :: task.vmas;
      gva)

let find_vma task gva =
  List.find_opt
    (fun v -> gva >= v.vma_start && gva < v.vma_start + v.vma_len)
    task.vmas

(** Handle a page fault inside a device mapping: dispatch to the
    driver's fault handler (§2.1's "mmap ... and its supporting page
    fault handler"). *)
let handle_fault _kernel task ~gva : unit result =
  wrap (fun () ->
      match find_vma task gva with
      | None -> Errno.fail Errno.EFAULT "fault outside any vma"
      | Some vma ->
          vma.vma_file.dev.ops.fop_fault task vma.vma_file vma
            ~gva:(Memory.Addr.align_down gva))

(** Unmap a device mapping.  The guest kernel destroys its own
    page-table leaves {e before} the driver (and hypervisor) learn of
    the unmap (§5.2); the driver VM side is torn down by the CVD. *)
let munmap kernel task ~gva : unit result =
  Kernel.charge_syscall kernel;
  wrap (fun () ->
      match find_vma task gva with
      | None -> Errno.fail Errno.EINVAL "munmap: no such mapping"
      | Some vma ->
          List.iter
            (fun (addr, _) -> ignore (Memory.Guest_pt.unmap task.pt ~gva:addr))
            (Memory.Addr.page_chunks ~addr:vma.vma_start ~len:vma.vma_len);
          task.vmas <- List.filter (fun v -> v != vma) task.vmas;
          (* tell the driver only after the guest page tables are gone
             (§5.2's unmap ordering) *)
          vma.vma_file.dev.ops.fop_vma_close task vma.vma_file vma)

(** User-space memory access with demand paging: on a fault inside a
    device VMA, run the driver fault handler and retry — this is the
    application's load/store path over mmap'd device memory. *)
let rec user_read kernel task ~gva ~len =
  try Task.read_mem task ~gva ~len
  with Memory.Fault.Page_fault info ->
    (match handle_fault kernel task ~gva:info.Memory.Fault.addr with
    | Ok () -> ()
    | Error e -> Errno.fail e "unresolvable fault");
    user_read kernel task ~gva ~len

let rec user_write kernel task ~gva data =
  try Task.write_mem task ~gva data
  with Memory.Fault.Page_fault info ->
    (match handle_fault kernel task ~gva:info.Memory.Fault.addr with
    | Ok () -> ()
    | Error e -> Errno.fail e "unresolvable fault");
    user_write kernel task ~gva data

(** Poll: block until the file is readable/writable or [timeout]
    expires.  Drivers return the current event mask plus the wait
    queue to sleep on; the VFS loops, like the kernel's poll core. *)
let poll kernel task fd ~want_in ~want_out ~timeout : poll_result result =
  Kernel.charge_syscall kernel;
  wrap (fun () ->
      let file = lookup_fd task fd in
      let deadline_left = ref timeout in
      let rec loop () =
        let r = file.dev.ops.fop_poll task file ~want_in ~want_out in
        let ready = (want_in && r.pollin) || (want_out && r.pollout) in
        if ready || !deadline_left <= 0. then r
        else
          match r.poll_wq with
          | None -> r
          | Some wq ->
              let before = Sim.Engine.now (Kernel.engine kernel) in
              let woken = Wait_queue.sleep_timeout wq ~timeout:!deadline_left in
              let elapsed = Sim.Engine.now (Kernel.engine kernel) -. before in
              deadline_left := !deadline_left -. elapsed;
              if woken then loop ()
              else file.dev.ops.fop_poll task file ~want_in ~want_out
      in
      loop ())

(** Register/unregister for asynchronous notification (fasync, §2.1);
    the driver delivers events via {!kill_fasync}. *)
let fasync kernel task fd ~on : unit result =
  Kernel.charge_syscall kernel;
  wrap (fun () ->
      let file = lookup_fd task fd in
      file.dev.ops.fop_fasync task file ~on;
      if on then begin
        if not (List.memq task file.fasync_subscribers) then
          file.fasync_subscribers <- task :: file.fasync_subscribers
      end
      else
        file.fasync_subscribers <-
          List.filter (fun t -> t != task) file.fasync_subscribers)

(** Driver-side: notify every subscribed process with SIGIO. *)
let kill_fasync file = List.iter Task.deliver_sigio file.fasync_subscribers
