(** Core kernel data structures.

    [task], [file], [vma], [device] and [file_ops] are mutually
    recursive (a task holds files, a file belongs to a device whose
    handlers take tasks), so they are defined together here; the
    modules around this one ({!Task}, {!Vfs}, {!Devfs}, {!Uaccess})
    provide the behaviour. *)

type task = {
  pid : int;
  task_name : string;
  vm : Hypervisor.Vm.t;
  pt : Memory.Guest_pt.t; (* the process's page table *)
  va_alloc : Memory.Allocator.t; (* user virtual-address space *)
  fds : (int, file) Hashtbl.t;
  mutable next_fd : int;
  mutable mmap_cursor : int; (* next free address in the mmap area *)
  mutable vmas : vma list;
  mutable remote : remote_ctx option;
      (* CVD backend marker (§5.2): when set, this thread executes a
         file operation on behalf of a process in another VM and the
         wrapper stubs redirect its memory operations to the
         hypervisor. *)
  mutable sigio_handler : (unit -> unit) option;
  mutable sigio_count : int;
}

and file = {
  file_id : int;
  dev : device;
  opener : task;
  mutable nonblock : bool;
  mutable fasync_subscribers : task list;
  mutable closed : bool;
}

and vma = {
  vma_start : int; (* gva, page aligned *)
  vma_len : int; (* bytes, page multiple *)
  vma_file : file;
  vma_pgoff : int; (* page offset into the device mapping *)
}

and device = {
  dev_path : string; (* "/dev/dri/card0" *)
  dev_class : string; (* "gpu", "input", "camera", "audio", "net" *)
  driver_name : string;
  ops : file_ops;
  exclusive : bool; (* driver allows only one open at a time (§5.1) *)
  mutable open_count : int;
}

and file_ops = {
  fop_open : task -> file -> unit;
  fop_release : task -> file -> unit;
  fop_read : task -> file -> buf:int -> len:int -> int;
  fop_write : task -> file -> buf:int -> len:int -> int;
  fop_ioctl : task -> file -> cmd:int -> arg:int64 -> int;
  fop_mmap : task -> file -> vma -> unit;
  fop_poll : task -> file -> want_in:bool -> want_out:bool -> poll_result;
      (* [want_in]/[want_out] mirror the caller's interest mask
         (POLLIN/POLLOUT): a driver may skip work for directions the
         caller did not ask about (netmap only txsyncs under
         [want_out]), but must still report true readiness *)
  fop_fasync : task -> file -> on:bool -> unit;
  fop_fault : task -> file -> vma -> gva:int -> unit;
  fop_vma_close : task -> file -> vma -> unit;
      (* the vm_ops->close analogue: the kernel tells the driver a
         mapping is gone (after destroying its own page-table leaves,
         §5.2) *)
  fop_kinds : Os_flavor.op_kind list; (* which operations the driver implements *)
}

and poll_result = {
  pollin : bool;
  pollout : bool;
  poll_wq : Wait_queue.t option; (* where to sleep when no event is ready *)
}

and remote_ctx = {
  rc_hyp : Hypervisor.Hyp.t;
  rc_target : Hypervisor.Vm.t; (* the guest whose process we serve *)
  rc_pt : Memory.Guest_pt.t; (* that process's page table *)
  rc_grant : int; (* grant reference for this file operation *)
  rc_charge : float -> unit; (* simulated-time cost of each hypercall *)
  rc_trace : int; (* trace id of the forwarded operation; 0 = untraced *)
}

let no_poll = { pollin = false; pollout = false; poll_wq = None }

(** Handlers a driver does not implement. *)
let not_supported _ = Errno.fail Errno.EINVAL "operation not supported"

let default_ops =
  {
    fop_open = (fun _ _ -> ());
    fop_release = (fun _ _ -> ());
    fop_read = (fun _ _ ~buf:_ ~len:_ -> Errno.fail Errno.EINVAL "no read handler");
    fop_write = (fun _ _ ~buf:_ ~len:_ -> Errno.fail Errno.EINVAL "no write handler");
    fop_ioctl = (fun _ _ ~cmd:_ ~arg:_ -> Errno.fail Errno.ENOTTY "no ioctl handler");
    fop_mmap = (fun _ _ _ -> Errno.fail Errno.ENODEV "no mmap handler");
    fop_poll = (fun _ _ ~want_in:_ ~want_out:_ -> no_poll);
    fop_fasync = (fun _ _ ~on:_ -> ());
    fop_fault = (fun _ _ _ ~gva:_ -> Errno.fail Errno.EFAULT "no fault handler");
    fop_vma_close = (fun _ _ _ -> ());
    fop_kinds = [ Os_flavor.Open; Os_flavor.Release ];
  }

let make_device ~path ~cls ~driver ?(exclusive = false) ops =
  {
    dev_path = path;
    dev_class = cls;
    driver_name = driver;
    ops;
    exclusive;
    open_count = 0;
  }
