(** Core kernel data structures — mutually recursive, so defined
    together; behaviour lives in {!Task}, {!Vfs}, {!Devfs} and
    {!Uaccess}. *)

type task = {
  pid : int;
  task_name : string;
  vm : Hypervisor.Vm.t;
  pt : Memory.Guest_pt.t; (** the process's page table *)
  va_alloc : Memory.Allocator.t;
  fds : (int, file) Hashtbl.t;
  mutable next_fd : int;
  mutable mmap_cursor : int;  (** next free address in the mmap area *)
  mutable vmas : vma list;
  mutable remote : remote_ctx option;
      (** CVD backend marker (§5.2): set while this thread executes a
          file operation for a process in another VM, redirecting its
          memory operations to the hypervisor *)
  mutable sigio_handler : (unit -> unit) option;
  mutable sigio_count : int;
}

and file = {
  file_id : int;
  dev : device;
  opener : task;
  mutable nonblock : bool;
  mutable fasync_subscribers : task list;
  mutable closed : bool;
}

and vma = {
  vma_start : int; (** gva, page aligned *)
  vma_len : int; (** bytes, page multiple *)
  vma_file : file;
  vma_pgoff : int; (** page offset into the device mapping *)
}

and device = {
  dev_path : string;
  dev_class : string;
  driver_name : string;
  ops : file_ops;
  exclusive : bool; (** single-open driver (§5.1: camera, netmap) *)
  mutable open_count : int;
}

and file_ops = {
  fop_open : task -> file -> unit;
  fop_release : task -> file -> unit;
  fop_read : task -> file -> buf:int -> len:int -> int;
  fop_write : task -> file -> buf:int -> len:int -> int;
  fop_ioctl : task -> file -> cmd:int -> arg:int64 -> int;
  fop_mmap : task -> file -> vma -> unit;
  fop_poll : task -> file -> want_in:bool -> want_out:bool -> poll_result;
      (** [want_in]/[want_out] mirror the caller's POLLIN/POLLOUT
          interest mask; drivers may skip work for directions not
          asked about but must report true readiness *)
  fop_fasync : task -> file -> on:bool -> unit;
  fop_fault : task -> file -> vma -> gva:int -> unit;
  fop_vma_close : task -> file -> vma -> unit;
      (** vm_ops->close analogue: called after the kernel destroyed its
          own page-table leaves (§5.2's unmap ordering) *)
  fop_kinds : Os_flavor.op_kind list;
}

and poll_result = {
  pollin : bool;
  pollout : bool;
  poll_wq : Wait_queue.t option; (** where to sleep when nothing is ready *)
}

and remote_ctx = {
  rc_hyp : Hypervisor.Hyp.t;
  rc_target : Hypervisor.Vm.t;
  rc_pt : Memory.Guest_pt.t;
  rc_grant : int;
  rc_charge : float -> unit; (** per-hypercall simulated-time cost *)
  rc_trace : int; (** trace id of the forwarded operation; 0 = untraced *)
}

val no_poll : poll_result

(** Raises EINVAL; for handlers a driver does not implement. *)
val not_supported : 'a -> 'b

(** Handlers that reject everything; override what the driver
    implements. *)
val default_ops : file_ops

val make_device :
  path:string -> cls:string -> driver:string -> ?exclusive:bool -> file_ops -> device
