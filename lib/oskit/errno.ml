(** Unix error codes, as drivers and the VFS report them.

    The subset device drivers actually return; values match Linux so
    the CVD can encode failures as negative integers on the wire, just
    like the real syscall ABI. *)

type t =
  | EPERM
  | EIO
  | EAGAIN
  | ENOMEM
  | EACCES
  | EFAULT
  | EBUSY
  | ENODEV
  | EINVAL
  | ENAMETOOLONG
  | ENOTTY
  | ENOSPC
  | EOVERFLOW
  | ETIMEDOUT

exception Unix_error of t * string
(** Raised by driver handlers; caught at the VFS boundary. *)

let to_code = function
  | EPERM -> 1
  | EIO -> 5
  | EAGAIN -> 11
  | ENOMEM -> 12
  | EACCES -> 13
  | EFAULT -> 14
  | EBUSY -> 16
  | ENODEV -> 19
  | EINVAL -> 22
  | ENAMETOOLONG -> 36
  | ENOTTY -> 25
  | ENOSPC -> 28
  | EOVERFLOW -> 75
  | ETIMEDOUT -> 110

let of_code = function
  | 1 -> Some EPERM
  | 5 -> Some EIO
  | 11 -> Some EAGAIN
  | 12 -> Some ENOMEM
  | 13 -> Some EACCES
  | 14 -> Some EFAULT
  | 16 -> Some EBUSY
  | 19 -> Some ENODEV
  | 22 -> Some EINVAL
  | 36 -> Some ENAMETOOLONG
  | 25 -> Some ENOTTY
  | 28 -> Some ENOSPC
  | 75 -> Some EOVERFLOW
  | 110 -> Some ETIMEDOUT
  | _ -> None

let to_string = function
  | EPERM -> "EPERM"
  | EIO -> "EIO"
  | EAGAIN -> "EAGAIN"
  | ENOMEM -> "ENOMEM"
  | EACCES -> "EACCES"
  | EFAULT -> "EFAULT"
  | EBUSY -> "EBUSY"
  | ENODEV -> "ENODEV"
  | EINVAL -> "EINVAL"
  | ENAMETOOLONG -> "ENAMETOOLONG"
  | ENOTTY -> "ENOTTY"
  | ENOSPC -> "ENOSPC"
  | EOVERFLOW -> "EOVERFLOW"
  | ETIMEDOUT -> "ETIMEDOUT"

let fail errno msg = raise (Unix_error (errno, msg))

let pp ppf t = Fmt.string ppf (to_string t)
