(** User-memory access for drivers — with the wrapper stubs of §5.2.

    Drivers call [copy_from_user] / [copy_to_user] / [insert_pfn] as
    they would in Linux.  When the calling thread is {e marked} (the
    CVD backend set [task.remote] before invoking the driver on behalf
    of a guest process), the operation is redirected to the hypervisor
    memory-operation API and validated against the guest's grant
    table; otherwise it acts on the local process.  Device drivers are
    therefore {b unmodified} with respect to virtualization. *)

open Defs

let fault_of_rejection msg = Errno.fail Errno.EFAULT msg

(** Optional observation hook: records every user-memory operation a
    driver performs.  The analyzer's tests use it to check that the
    statically-extracted operation lists match what the driver really
    does, and tracing tools can log with it. *)
type recorded_op =
  | Rec_copy_from of { uaddr : int; len : int }
  | Rec_copy_to of { uaddr : int; len : int }
  | Rec_insert_pfn of { gva : int }

let recorder : (recorded_op -> unit) option ref = ref None

let with_recorder f body =
  let saved = !recorder in
  recorder := Some f;
  match body () with
  | v ->
      recorder := saved;
      v
  | exception exn ->
      recorder := saved;
      raise exn

let record op = match !recorder with Some f -> f op | None -> ()

(* Span a remote memory operation on the hypervisor lane.  The span
   carries the software-TLB hit/miss delta the operation caused, read
   from the hypervisor's audit counters — the executable form of the
   paper's translation-cost breakdown.  Zero-cost when tracing is off
   or the operation is untraced (rc_trace = 0). *)
let hyp_span rc ~name f =
  let tr = Hypervisor.Hyp.tracer rc.rc_hyp in
  if (not (Obs.Trace.enabled tr)) || rc.rc_trace = 0 then f ()
  else begin
    let audit = Hypervisor.Hyp.audit rc.rc_hyp in
    let hits0 = Hypervisor.Audit.tlb_hits audit
    and misses0 = Hypervisor.Audit.tlb_misses audit in
    let sp =
      Obs.Trace.span_begin tr ~trace:rc.rc_trace ~lane:Obs.Trace.Hypervisor
        ~cat:"hyp" ~name ()
    in
    let finish status =
      Obs.Trace.span_arg sp "tlb_hits"
        (float_of_int (Hypervisor.Audit.tlb_hits audit - hits0));
      Obs.Trace.span_arg sp "tlb_misses"
        (float_of_int (Hypervisor.Audit.tlb_misses audit - misses0));
      Obs.Trace.span_end ~status tr sp
    in
    match f () with
    | v ->
        finish "ok";
        v
    | exception exn ->
        finish "error";
        raise exn
  end

(** Driver reads [len] bytes from the current process at [uaddr] into
    [dst] at [dst_off] — zero-copy: the bytes land in the driver's
    buffer with no intermediate allocation, local and remote alike. *)
let copy_from_user_into task ~uaddr ~dst ~dst_off ~len =
  record (Rec_copy_from { uaddr; len });
  match task.remote with
  | None -> (
      try
        Hypervisor.Vm.read_gva_into task.vm ~pt:task.pt ~gva:uaddr ~dst ~dst_off
          ~len
      with Memory.Fault.Page_fault _ -> Errno.fail Errno.EFAULT "bad user pointer")
  | Some rc ->
      hyp_span rc ~name:"copy_from_user" (fun () ->
          rc.rc_charge 1.;
          let req =
            {
              Hypervisor.Hyp.caller = task.vm;
              target = rc.rc_target;
              pt = rc.rc_pt;
              grant_ref = rc.rc_grant;
            }
          in
          try
            Hypervisor.Hyp.copy_from_process_into rc.rc_hyp req ~gva:uaddr ~dst
              ~dst_off ~len
          with Hypervisor.Hyp.Rejected msg -> fault_of_rejection msg)

(** Driver reads [len] bytes from the current process at [uaddr]. *)
let copy_from_user task ~uaddr ~len =
  let dst = Bytes.create len in
  copy_from_user_into task ~uaddr ~dst ~dst_off:0 ~len;
  dst

(** Driver writes [len] bytes of [src] from [src_off] into the current
    process at [uaddr] — zero-copy counterpart of
    {!copy_from_user_into}. *)
let copy_to_user_from task ~uaddr ~src ~src_off ~len =
  record (Rec_copy_to { uaddr; len });
  match task.remote with
  | None -> (
      try
        Hypervisor.Vm.write_gva_from task.vm ~pt:task.pt ~gva:uaddr ~src ~src_off
          ~len
      with Memory.Fault.Page_fault _ -> Errno.fail Errno.EFAULT "bad user pointer")
  | Some rc ->
      hyp_span rc ~name:"copy_to_user" (fun () ->
          rc.rc_charge 1.;
          let req =
            {
              Hypervisor.Hyp.caller = task.vm;
              target = rc.rc_target;
              pt = rc.rc_pt;
              grant_ref = rc.rc_grant;
            }
          in
          try
            Hypervisor.Hyp.copy_to_process_from rc.rc_hyp req ~gva:uaddr ~src
              ~src_off ~len
          with Hypervisor.Hyp.Rejected msg -> fault_of_rejection msg)

(** Driver writes [data] into the current process at [uaddr]. *)
let copy_to_user task ~uaddr data =
  copy_to_user_from task ~uaddr ~src:data ~src_off:0 ~len:(Bytes.length data)

let copy_from_user_u32 task ~uaddr =
  Int32.to_int (Bytes.get_int32_le (copy_from_user task ~uaddr ~len:4) 0)
  land 0xffffffff

let copy_to_user_u32 task ~uaddr v =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int v);
  copy_to_user task ~uaddr b

let copy_from_user_u64 task ~uaddr =
  Bytes.get_int64_le (copy_from_user task ~uaddr ~len:8) 0

let copy_to_user_u64 task ~uaddr v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  copy_to_user task ~uaddr b

(** Map one page of (driver-VM-addressed) memory into the current
    process at [gva] — the [vm_insert_pfn] analogue, used by mmap and
    fault handlers.  [page_gpa] is the page's address as the driver
    sees it (its VM's guest-physical space). *)
let insert_pfn task ~gva ~page_gpa ~perms =
  record (Rec_insert_pfn { gva });
  if not (Memory.Addr.is_page_aligned gva && Memory.Addr.is_page_aligned page_gpa)
  then Errno.fail Errno.EINVAL "insert_pfn: unaligned";
  match task.remote with
  | None ->
      (* Local process: point its page table at the existing
         guest-physical page. *)
      Memory.Guest_pt.map task.pt ~gva ~gpa:page_gpa ~perms
  | Some rc ->
      hyp_span rc ~name:"insert_pfn" (fun () ->
          rc.rc_charge 1.;
          (* Resolve the driver's view of the page to a system-physical
             frame, then ask the hypervisor to wire it into the guest. *)
          match Memory.Ept.lookup (Hypervisor.Vm.ept task.vm) ~gpa:page_gpa with
          | None ->
              Errno.fail Errno.EFAULT "insert_pfn: page not present in driver VM"
          | Some (spa, _) -> (
              let req =
                {
                  Hypervisor.Hyp.caller = task.vm;
                  target = rc.rc_target;
                  pt = rc.rc_pt;
                  grant_ref = rc.rc_grant;
                }
              in
              try
                Hypervisor.Hyp.map_page_into_process rc.rc_hyp req ~gva ~spa
                  ~perms
              with Hypervisor.Hyp.Rejected msg -> fault_of_rejection msg))

(** Remove a process mapping previously created with {!insert_pfn}. *)
let remove_pfn task ~gva =
  match task.remote with
  | None -> ignore (Memory.Guest_pt.unmap task.pt ~gva)
  | Some rc ->
      hyp_span rc ~name:"remove_pfn" (fun () ->
          rc.rc_charge 1.;
          let req =
            {
              Hypervisor.Hyp.caller = task.vm;
              target = rc.rc_target;
              pt = rc.rc_pt;
              grant_ref = rc.rc_grant;
            }
          in
          try Hypervisor.Hyp.unmap_page_from_process rc.rc_hyp req ~gva
          with Hypervisor.Hyp.Rejected msg -> fault_of_rejection msg)

(** Number of kernel entry points the wrapper stubs intercept; the
    paper modified 13 Linux functions (§5.2).  Listed for the code
    inventory (Table 2 analogue). *)
let wrapped_kernel_functions =
  [
    "copy_from_user"; "copy_to_user"; "__copy_from_user"; "__copy_to_user";
    "get_user"; "put_user"; "clear_user"; "strncpy_from_user"; "strnlen_user";
    "vm_insert_pfn"; "remap_pfn_range"; "zap_vma_ptes"; "io_remap_pfn_range";
  ]
