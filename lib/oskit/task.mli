(** Process management: creation, user-memory buffers, raw access,
    SIGIO delivery and the remote marking the CVD backend uses. *)

open Defs

val user_heap_base : int
val user_heap_size : int
val mmap_base : int

(** [pid] and [pt_id] come from the owning kernel's per-VM counters
    (see {!Kernel.spawn_task}); the hypervisor keys per-process state
    by [(vm id, pid)], so per-VM uniqueness is all that is needed. *)
val create : pid:int -> pt_id:int -> name:string -> vm:Hypervisor.Vm.t -> task

(** Allocate process memory (page-granular backing from VM RAM);
    returns the user virtual address. *)
val alloc_buf : task -> int -> int

val free_buf : task -> gva:int -> len:int -> unit

(** Raw user-memory access (no demand paging — see [Vfs.user_read]). *)
val read_mem : task -> gva:int -> len:int -> bytes

val write_mem : task -> gva:int -> bytes -> unit
val read_u32 : task -> gva:int -> int
val write_u32 : task -> gva:int -> int -> unit
val read_u64 : task -> gva:int -> int64
val write_u64 : task -> gva:int -> int64 -> unit

(** Asynchronous-notification delivery (§2.1). *)
val on_sigio : task -> (unit -> unit) -> unit

val deliver_sigio : task -> unit

(** Mark/unmark a thread as executing a file operation for a remote
    guest process (§5.2); [with_remote] brackets and restores. *)
val mark_remote : task -> remote_ctx -> unit

val unmark_remote : task -> unit
val with_remote : task -> remote_ctx -> (unit -> 'a) -> 'a
