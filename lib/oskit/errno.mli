(** Unix error codes as drivers and the VFS report them; values match
    Linux so the CVD can encode failures as negative integers. *)

type t =
  | EPERM
  | EIO
  | EAGAIN
  | ENOMEM
  | EACCES
  | EFAULT
  | EBUSY
  | ENODEV
  | EINVAL
  | ENAMETOOLONG
  | ENOTTY
  | ENOSPC
  | EOVERFLOW
  | ETIMEDOUT

exception Unix_error of t * string
(** Raised by driver handlers; caught at the VFS boundary. *)

val to_code : t -> int
val of_code : int -> t option
val to_string : t -> string
val fail : t -> string -> 'a
val pp : Format.formatter -> t -> unit
