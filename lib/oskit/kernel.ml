(** A simulated Unix-like kernel instance (one per VM). *)

type costs = {
  syscall_us : float; (* user/kernel crossing *)
  context_switch_us : float;
}

let zero_costs = { syscall_us = 0.; context_switch_us = 0. }

(** Calibrated so a native no-op file operation costs well under a
    microsecond, matching the paper's native baselines. *)
let default_costs = { syscall_us = 0.3; context_switch_us = 1.2 }

type t = {
  engine : Sim.Engine.t;
  vm : Hypervisor.Vm.t;
  flavor : Os_flavor.t;
  devfs : Devfs.t;
  costs : costs;
  mutable tasks : Defs.task list;
  (* Per-kernel id allocators.  These used to be process-wide globals;
     scoping them to the kernel keeps every id deterministic per
     machine, so independent fleet shards produce bit-identical
     results no matter how many shards ran before them (and no matter
     which OCaml domain runs them). *)
  mutable next_pid : int;
  mutable next_pt_id : int;
  mutable next_file_id : int;
}

let create ~engine ~vm ~flavor ?(costs = default_costs) () =
  {
    engine;
    vm;
    flavor;
    devfs = Devfs.create ();
    costs;
    tasks = [];
    next_pid = 0;
    next_pt_id = 0;
    next_file_id = 0;
  }

let engine t = t.engine
let vm t = t.vm
let flavor t = t.flavor
let devfs t = t.devfs

let spawn_task t ~name =
  t.next_pid <- t.next_pid + 1;
  t.next_pt_id <- t.next_pt_id + 1;
  let task = Task.create ~pid:t.next_pid ~pt_id:t.next_pt_id ~name ~vm:t.vm in
  t.tasks <- task :: t.tasks;
  task

(** Allocate a file id ({!Vfs.openf}); unique per kernel, which is the
    scope every consumer keys by. *)
let alloc_file_id t =
  t.next_file_id <- t.next_file_id + 1;
  t.next_file_id

(** Charge simulated time; a no-op under zero costs so purely
    functional tests can run outside the engine. *)
let charge _t amount = if amount > 0. then Sim.Engine.wait amount

let charge_syscall t = charge t t.costs.syscall_us
let syscall_cost t = t.costs.syscall_us
