(** A simulated Unix-like kernel instance (one per VM). *)

type costs = {
  syscall_us : float; (* user/kernel crossing *)
  context_switch_us : float;
}

let zero_costs = { syscall_us = 0.; context_switch_us = 0. }

(** Calibrated so a native no-op file operation costs well under a
    microsecond, matching the paper's native baselines. *)
let default_costs = { syscall_us = 0.3; context_switch_us = 1.2 }

type t = {
  engine : Sim.Engine.t;
  vm : Hypervisor.Vm.t;
  flavor : Os_flavor.t;
  devfs : Devfs.t;
  costs : costs;
  mutable tasks : Defs.task list;
}

let create ~engine ~vm ~flavor ?(costs = default_costs) () =
  { engine; vm; flavor; devfs = Devfs.create (); costs; tasks = [] }

let engine t = t.engine
let vm t = t.vm
let flavor t = t.flavor
let devfs t = t.devfs

let spawn_task t ~name =
  let task = Task.create ~name ~vm:t.vm in
  t.tasks <- task :: t.tasks;
  task

(** Charge simulated time; a no-op under zero costs so purely
    functional tests can run outside the engine. *)
let charge _t amount = if amount > 0. then Sim.Engine.wait amount

let charge_syscall t = charge t t.costs.syscall_us
let syscall_cost t = t.costs.syscall_us
