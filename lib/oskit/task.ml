(** Process/thread management helpers. *)

open Defs

(* User VA layout: heap allocations grow from 16 MiB; device mmaps are
   placed by the VFS from 1 GiB upward (see Vfs.mmap). *)
let user_heap_base = 0x0100_0000
let user_heap_size = 0x3000_0000
let mmap_base = 0x4000_0000

(* [pid] and [pt_id] are allocated by the owning kernel (per-VM
   counters): the hypervisor keys its per-process state by
   [(vm id, pid)] / [(vm id, pt id)], so per-VM uniqueness suffices —
   and keeping the counters out of global state lets independent
   machines (fleet shards) allocate identical ids regardless of how
   many ran before them in the same process. *)
let create ~pid ~pt_id ~name ~vm =
  {
    pid;
    task_name = name;
    vm;
    pt = Memory.Guest_pt.create ~id:pt_id ();
    va_alloc = Memory.Allocator.create ~base:user_heap_base ~size:user_heap_size;
    fds = Hashtbl.create 8;
    next_fd = 3; (* 0-2 reserved, as tradition demands *)
    mmap_cursor = mmap_base;
    vmas = [];
    remote = None;
    sigio_handler = None;
    sigio_count = 0;
  }

(** Allocate [len] bytes of process memory (page-granular backing from
    the VM's RAM); returns the user virtual address. *)
let alloc_buf task len =
  if len <= 0 then invalid_arg "Task.alloc_buf";
  let pages = Memory.Addr.pages_spanned ~addr:0 ~len in
  let gva = Memory.Allocator.alloc_range task.va_alloc pages in
  for i = 0 to pages - 1 do
    let gpa = Hypervisor.Vm.alloc_gpa_page task.vm in
    Memory.Guest_pt.map task.pt
      ~gva:(gva + (i * Memory.Addr.page_size))
      ~gpa ~perms:Memory.Perm.rw
  done;
  gva

let free_buf task ~gva ~len =
  let pages = Memory.Addr.pages_spanned ~addr:0 ~len in
  for i = 0 to pages - 1 do
    let page_gva = gva + (i * Memory.Addr.page_size) in
    (match Memory.Guest_pt.translate_opt task.pt ~gva:page_gva ~access:Memory.Perm.Read with
    | Some gpa -> Hypervisor.Vm.free_gpa_page task.vm (Memory.Addr.align_down gpa)
    | None -> ());
    ignore (Memory.Guest_pt.unmap task.pt ~gva:page_gva)
  done;
  Memory.Allocator.free_page task.va_alloc gva

(** Raw user-memory access, no demand paging (see {!Vfs.user_read} for
    the fault-handling variant applications use on mmap'd ranges). *)
let read_mem task ~gva ~len = Hypervisor.Vm.read_gva task.vm ~pt:task.pt ~gva ~len
let write_mem task ~gva data = Hypervisor.Vm.write_gva task.vm ~pt:task.pt ~gva data

let read_u32 task ~gva = Hypervisor.Vm.read_gva_u32 task.vm ~pt:task.pt ~gva
let write_u32 task ~gva v = Hypervisor.Vm.write_gva_u32 task.vm ~pt:task.pt ~gva v
let read_u64 task ~gva = Hypervisor.Vm.read_gva_u64 task.vm ~pt:task.pt ~gva
let write_u64 task ~gva v = Hypervisor.Vm.write_gva_u64 task.vm ~pt:task.pt ~gva v

(** Register the process's SIGIO handler (the asynchronous-notification
    delivery target of §2.1). *)
let on_sigio task handler = task.sigio_handler <- Some handler

let deliver_sigio task =
  task.sigio_count <- task.sigio_count + 1;
  match task.sigio_handler with Some h -> h () | None -> ()

(** Mark/unmark this thread as executing a file operation for a remote
    guest process (the CVD backend brackets driver invocations with
    these, §5.2). *)
let mark_remote task rc = task.remote <- Some rc
let unmark_remote task = task.remote <- None

let with_remote task rc f =
  mark_remote task rc;
  match f () with
  | v ->
      unmark_remote task;
      v
  | exception exn ->
      unmark_remote task;
      raise exn
