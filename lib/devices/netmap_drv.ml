(** netmap over an e1000-like gigabit NIC (§6.1.2, Figure 2).

    The netmap data path: TX ring and packet buffers live in driver
    memory, mmap'd straight into the application; a [poll] on the
    device file runs txsync, which hands new slots to the NIC.  The
    NIC drains the ring at wire speed (1 Gb/s -> 1.488 Mpps for
    64-byte frames).  The application pays one file operation per
    batch, which is exactly the cost Paradice's forwarding amortises
    with larger batches.

    Ring layout (shared memory the application maps):
    {v
      page 0:        header { num_slots u32; head u32; cur u32; tail u32 }
                     slots[num_slots] { len u32; buf_idx u32 }
      pages 1..N:    packet buffers, [buf_size] bytes each
    v}
    [cur] is written by the application (first unfilled slot); [tail]
    by the NIC (first slot it has not transmitted).  Free space is
    everything from [cur] to [tail-1] modulo ring size. *)

open Oskit

let nioc_regif = Ioctl_num.iowr ~typ:'N' ~nr:1 ~size:16 (* { ringid; num_slots out; buf_size out } *)
let nioc_txsync = Ioctl_num.io ~typ:'N' ~nr:2

let hdr_num_slots = 0
let hdr_head = 4
let hdr_cur = 8
let hdr_tail = 12
let slots_off = 64
let slot_bytes = 8

type t = {
  kernel : Kernel.t;
  iommu : Memory.Iommu.t;
  num_slots : int;
  buf_size : int;
  ring_pages : int array; (* driver gpas: header page + buffer pages *)
  ring_dma : int; (* DMA base where the NIC sees the same pages *)
  gbps : float;
  kick : unit Sim.Mailbox.t; (* txsync doorbell *)
  wq : Wait_queue.t; (* pollers waiting for ring space *)
  mutable hw_tail : int;
  mutable tx_packets : int;
  mutable tx_bytes : int;
  mutable started : bool;
}

let bufs_per_page = Memory.Addr.page_size / 2048

let create kernel ~iommu ?(num_slots = 1024) ?(buf_size = 2048) ?(gbps = 1.) () =
  let header_pages = 1 in
  let buffer_pages = (num_slots + bufs_per_page - 1) / bufs_per_page in
  let vm = Kernel.vm kernel in
  let pages =
    Array.init (header_pages + buffer_pages) (fun _ -> Hypervisor.Vm.alloc_gpa_page vm)
  in
  (* The NIC DMAs the same pages: map them in its IOMMU domain. *)
  let ring_dma = 0x2000_0000 in
  Array.iteri
    (fun i gpa ->
      match Memory.Ept.lookup (Hypervisor.Vm.ept vm) ~gpa with
      | Some (spa, _) ->
          Memory.Iommu.map iommu
            ~dma:(ring_dma + (i * Memory.Addr.page_size))
            ~spa ~perms:Memory.Perm.rw ~region:None
      | None -> assert false)
    pages;
  let t =
    {
      kernel;
      iommu;
      num_slots;
      buf_size;
      ring_pages = pages;
      ring_dma;
      gbps;
      kick = Sim.Mailbox.create (Kernel.engine kernel);
      wq = Wait_queue.create (Kernel.engine kernel);
      hw_tail = 0;
      tx_packets = 0;
      tx_bytes = 0;
      started = false;
    }
  in
  t

let tx_packets t = t.tx_packets
let tx_bytes t = t.tx_bytes

(* Driver-side access to the ring header/slots through its own pages. *)
let hdr_read t off =
  let vm = Kernel.vm t.kernel in
  Int32.to_int
    (Bytes.get_int32_le (Hypervisor.Vm.read_gpa vm ~gpa:(t.ring_pages.(0) + off) ~len:4) 0)
  land 0xffffffff

let hdr_write t off v =
  let vm = Kernel.vm t.kernel in
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int v);
  Hypervisor.Vm.write_gpa vm ~gpa:(t.ring_pages.(0) + off) b

let slot_addr slot = slots_off + (slot * slot_bytes)

let buf_dma t slot =
  let page = 1 + (slot / bufs_per_page) in
  let off = slot mod bufs_per_page * t.buf_size in
  t.ring_dma + (page * Memory.Addr.page_size) + off

(** Wire time for one frame: bits / rate, plus 20 bytes of
    preamble/IFG, matching the 1.488 Mpps line rate at 64 bytes. *)
let wire_time_us t ~len = float_of_int ((len + 20) * 8) /. (t.gbps *. 1000.)

(* The NIC: woken by txsync, transmits [tail..cur) at wire speed. *)
let start t =
  if not t.started then begin
    t.started <- true;
    hdr_write t hdr_num_slots t.num_slots;
    hdr_write t hdr_cur 0;
    hdr_write t hdr_tail 0;
    let eng = Kernel.engine t.kernel in
    Sim.Engine.spawn eng ~name:"e1000-tx" (fun () ->
        let rec loop () =
          let () = Sim.Mailbox.recv t.kick in
          (* [cur] lives in the shared ring header the application
             mmaps, so it is attacker-controlled: a value outside
             [0, num_slots) would never match the mod-num_slots
             [hw_tail] walk below and the NIC would transmit forever.
             An invalid cur invalidates the sync — skip the pass. *)
          let cur = hdr_read t hdr_cur in
          let cur = if cur >= t.num_slots then t.hw_tail else cur in
          while t.hw_tail <> cur do
            let slot = t.hw_tail in
            let len =
              let vm = Kernel.vm t.kernel in
              Int32.to_int
                (Bytes.get_int32_le
                   (Hypervisor.Vm.read_gpa vm
                      ~gpa:(t.ring_pages.(0) + slot_addr slot)
                      ~len:4)
                   0)
            in
            let len = if len <= 0 || len > t.buf_size then 60 else len in
            (* DMA the frame header: permissions checked by the IOMMU *)
            (try
               ignore
                 (Memory.Phys_mem.read
                    (Hypervisor.Vm.phys (Kernel.vm t.kernel))
                    ~spa:
                      (Memory.Iommu.translate t.iommu ~dma:(buf_dma t slot)
                         ~access:Memory.Perm.Read)
                    ~len:(min len 16))
             with Memory.Fault.Iommu_fault _ -> ());
            Sim.Engine.wait (wire_time_us t ~len);
            t.tx_packets <- t.tx_packets + 1;
            t.tx_bytes <- t.tx_bytes + len;
            t.hw_tail <- (t.hw_tail + 1) mod t.num_slots;
            hdr_write t hdr_tail t.hw_tail;
            Wait_queue.wake_all t.wq
          done;
          loop ()
        in
        loop ())
  end

(* txsync: publish the application's [cur] to the hardware. *)
let txsync t = Sim.Mailbox.send t.kick ()

let free_slots t =
  let cur = hdr_read t hdr_cur and tail = hdr_read t hdr_tail in
  (tail - cur - 1 + t.num_slots) mod t.num_slots

(** Slots published by the application but not yet transmitted —
    [cur..tail) modulo ring size.  Sizes a batched txsync: issuing one
    multi-op descriptor per [pending_tx] window amortises the doorbell
    the same way netmap amortises the system call. *)
let pending_tx t =
  let cur = hdr_read t hdr_cur and tail = hdr_read t hdr_tail in
  (cur - tail + t.num_slots) mod t.num_slots

let ring_slots t = t.num_slots

let file_ops t =
  {
    Defs.default_ops with
    Defs.fop_kinds =
      [ Os_flavor.Open; Os_flavor.Release; Os_flavor.Ioctl; Os_flavor.Mmap;
        Os_flavor.Fault; Os_flavor.Poll ];
    fop_ioctl =
      (fun task _file ~cmd ~arg ->
        if cmd = nioc_regif then begin
          let uaddr = Int64.to_int arg in
          let data = Uaccess.copy_from_user task ~uaddr ~len:16 in
          (* there is exactly one TX ring: any other ringid is a
             request for memory we do not have *)
          let ringid = Int32.to_int (Bytes.get_int32_le data 0) land 0xffffffff in
          if ringid <> 0 then Errno.fail Errno.EINVAL "regif: bad ringid";
          Bytes.set_int32_le data 4 (Int32.of_int t.num_slots);
          Bytes.set_int32_le data 8 (Int32.of_int t.buf_size);
          Uaccess.copy_to_user task ~uaddr data;
          0
        end
        else if cmd = nioc_txsync then begin
          txsync t;
          0
        end
        else Errno.fail Errno.ENOTTY "unknown netmap ioctl");
    fop_mmap = (fun _ _ _ -> ());
    fop_fault =
      (fun task _file vma ~gva ->
        let page = (gva - vma.Defs.vma_start) / Memory.Addr.page_size in
        if page < 0 || page >= Array.length t.ring_pages then
          Errno.fail Errno.EFAULT "fault beyond netmap ring";
        Uaccess.insert_pfn task ~gva ~page_gpa:t.ring_pages.(page)
          ~perms:Memory.Perm.rw);
    fop_poll =
      (fun _task _file ~want_in:_ ~want_out ->
        (* netmap semantics: poll(POLLOUT) performs txsync and reports
           whether the ring has space; a reader not asking for POLLOUT
           must not trigger a transmit pass *)
        if want_out then txsync t;
        { Defs.pollin = false; pollout = free_slots t > 0; poll_wq = Some t.wq });
  }

(** Only one process may own the netmap rings (§5.1). *)
let register t ~path =
  let dev =
    Defs.make_device ~path ~cls:"net" ~driver:"netmap/e1000e" ~exclusive:true
      (file_ops t)
  in
  Devfs.register (Kernel.devfs t.kernel) dev;
  dev

let ring_bytes t = Array.length t.ring_pages * Memory.Addr.page_size
