(** Input devices: the evdev event interface plus mouse/keyboard
    hardware models.

    Events are 16-byte records (timestamp, type, code, value) queued by
    the hardware; [read] drains the queue, [poll] and [fasync] signal
    arrival — the asynchronous-notification path whose forwarding
    latency §6.1.5 measures. *)

open Oskit

type event = { time_us : float; ev_type : int; code : int; value : int }

let ev_syn = 0x00
let ev_key = 0x01
let ev_rel = 0x02

let rel_x = 0x00
let rel_y = 0x01

let event_bytes = 16

let encode_event e =
  let b = Bytes.create event_bytes in
  Bytes.set_int32_le b 0 (Int32.of_int (int_of_float e.time_us));
  Bytes.set_int32_le b 4 (Int32.of_int e.ev_type);
  Bytes.set_int32_le b 8 (Int32.of_int e.code);
  Bytes.set_int32_le b 12 (Int32.of_int e.value);
  b

let decode_event b off =
  {
    time_us = float_of_int (Int32.to_int (Bytes.get_int32_le b off));
    ev_type = Int32.to_int (Bytes.get_int32_le b (off + 4));
    code = Int32.to_int (Bytes.get_int32_le b (off + 8));
    value = Int32.to_int (Bytes.get_int32_le b (off + 12));
  }

(* The evdev ioctl surface: identity, autorepeat, and exclusive grab —
   the commands an input stack issues besides the read loop. *)
let eviocgid = Ioctl_num.ior ~typ:'E' ~nr:0x02 ~size:8
(* { bustype u16; vendor u16; product u16; version u16 } *)

let eviocgrep = Ioctl_num.ior ~typ:'E' ~nr:0x03 ~size:8
let eviocsrep = Ioctl_num.iow ~typ:'E' ~nr:0x03 ~size:8
(* { delay_ms u32; period_ms u32 } *)

let eviocgrab = Ioctl_num.iow ~typ:'E' ~nr:0x90 ~size:4
(* value argument: nonzero grabs, zero releases *)

let rep_delay_max = 5000
let rep_period_max = 1000
let id_bustype = 0x03 (* USB *)
let id_vendor = 0x1d6b
let id_product = 0x0104
let id_version = 0x0111

type t = {
  kernel : Kernel.t;
  name : string;
  delivery_latency_us : float;
      (* USB interrupt + input-core processing between the physical
         event and the evdev queue: ~38 us natively, +16 us under
         device assignment (§6.1.5) *)
  queue : event Queue.t;
  wq : Wait_queue.t;
  mutable open_files : Defs.file list; (* fasync delivery targets *)
  mutable dropped : int;
  max_queue : int;
  (* latency probe: driver-side receive time of each event, consumed
     when the matching read reaches the driver (§6.1.5's methodology) *)
  mutable pending_report_times : float list;
  mutable read_latencies : float list;
  (* ioctl-visible state *)
  mutable rep_delay : int;
  mutable rep_period : int;
  mutable grabbed : Defs.file option; (* EVIOCGRAB holder *)
}

let create ?(delivery_latency_us = 0.) kernel ~name =
  {
    kernel;
    name;
    delivery_latency_us;
    queue = Queue.create ();
    wq = Wait_queue.create (Kernel.engine kernel);
    open_files = [];
    dropped = 0;
    max_queue = 1024;
    pending_report_times = [];
    read_latencies = [];
    rep_delay = 250;
    rep_period = 33;
    grabbed = None;
  }

let read_latencies t = t.read_latencies

(** Events queued but not yet read.  A batching frontend sizes one
    multi-op read descriptor to drain exactly this backlog. *)
let pending_events t = Queue.length t.queue

let dropped_events t = t.dropped

(** Hardware-side event injection (called by the mouse/keyboard models
    below).  The event reaches the evdev queue after the configured
    delivery latency; the latency probe starts at the {e physical}
    event time, matching §6.1.5's measurement. *)
let inject t e =
  let eng = Kernel.engine t.kernel in
  let reported_at = Sim.Engine.now eng in
  let deliver () =
    if Queue.length t.queue >= t.max_queue then t.dropped <- t.dropped + 1
    else begin
      Queue.add e t.queue;
      t.pending_report_times <- t.pending_report_times @ [ reported_at ];
      Wait_queue.wake_all t.wq;
      List.iter Vfs.kill_fasync t.open_files
    end
  in
  if t.delivery_latency_us <= 0. then deliver ()
  else Sim.Engine.at eng ~delay:t.delivery_latency_us deliver

let autorepeat t = (t.rep_delay, t.rep_period)

let file_ops t =
  {
    Defs.default_ops with
    Defs.fop_kinds =
      [ Os_flavor.Open; Os_flavor.Release; Os_flavor.Read; Os_flavor.Ioctl;
        Os_flavor.Poll; Os_flavor.Fasync ];
    fop_open = (fun _task file -> t.open_files <- file :: t.open_files);
    fop_release =
      (fun _task file ->
        t.open_files <- List.filter (fun f -> f != file) t.open_files;
        (* a grab dies with its holder *)
        (match t.grabbed with Some f when f == file -> t.grabbed <- None | _ -> ());
        (* wake readers parked on this queue so one sleeping on the
           just-closed file observes it instead of hanging forever *)
        Wait_queue.wake_all t.wq);
    fop_ioctl =
      (fun task file ~cmd ~arg ->
        if cmd = eviocgid then begin
          let b = Bytes.create 8 in
          Bytes.set_uint16_le b 0 id_bustype;
          Bytes.set_uint16_le b 2 id_vendor;
          Bytes.set_uint16_le b 4 id_product;
          Bytes.set_uint16_le b 6 id_version;
          Uaccess.copy_to_user task ~uaddr:(Int64.to_int arg) b;
          0
        end
        else if cmd = eviocgrep then begin
          let b = Bytes.create 8 in
          Bytes.set_int32_le b 0 (Int32.of_int t.rep_delay);
          Bytes.set_int32_le b 4 (Int32.of_int t.rep_period);
          Uaccess.copy_to_user task ~uaddr:(Int64.to_int arg) b;
          0
        end
        else if cmd = eviocsrep then begin
          let data = Uaccess.copy_from_user task ~uaddr:(Int64.to_int arg) ~len:8 in
          let delay = Int32.to_int (Bytes.get_int32_le data 0)
          and period = Int32.to_int (Bytes.get_int32_le data 4) in
          (* delay/period are u32s on the wire: an Int32 sign wrap lands
             below the lower bound and is rejected here *)
          if delay < 0 || delay > rep_delay_max then
            Errno.fail Errno.EINVAL "bad autorepeat delay";
          if period < 1 || period > rep_period_max then
            Errno.fail Errno.EINVAL "bad autorepeat period";
          t.rep_delay <- delay;
          t.rep_period <- period;
          0
        end
        else if cmd = eviocgrab then begin
          (* the argument is a value, not a pointer *)
          if Int64.compare arg 0L <> 0 then (
            match t.grabbed with
            | Some f when f != file -> Errno.fail Errno.EBUSY "device grabbed"
            | _ ->
                t.grabbed <- Some file;
                0)
          else (
            (match t.grabbed with
            | Some f when f == file -> t.grabbed <- None
            | _ -> ());
            0)
        end
        else Errno.fail Errno.ENOTTY "unknown evdev ioctl");
    fop_read =
      (fun task file ~buf ~len ->
        let max_events = len / event_bytes in
        if max_events = 0 then Errno.fail Errno.EINVAL "buffer too small";
        (* block until at least one event, honouring O_NONBLOCK.  A
           sleeper whose file was closed under it (force-release during
           quarantine or a planned driver-VM handoff) must fail on wake,
           not steal events that now belong to the file's successor. *)
        while Queue.is_empty t.queue do
          if file.Defs.closed then Errno.fail Errno.ENODEV "device file closed";
          if file.Defs.nonblock then Errno.fail Errno.EAGAIN "no events";
          Wait_queue.sleep t.wq
        done;
        if file.Defs.closed then Errno.fail Errno.ENODEV "device file closed";
        (* the read has "reached the driver": close the latency probe
           for each event we are about to deliver *)
        let now = Sim.Engine.now (Kernel.engine t.kernel) in
        let n = min max_events (Queue.length t.queue) in
        let out = Bytes.create (n * event_bytes) in
        for i = 0 to n - 1 do
          let e = Queue.take t.queue in
          Bytes.blit (encode_event e) 0 out (i * event_bytes) event_bytes;
          (match t.pending_report_times with
          | reported :: rest ->
              t.read_latencies <- (now -. reported) :: t.read_latencies;
              t.pending_report_times <- rest
          | [] -> ())
        done;
        Uaccess.copy_to_user task ~uaddr:buf out;
        n * event_bytes);
    fop_poll =
      (fun _task _file ~want_in:_ ~want_out:_ ->
        { Defs.pollin = not (Queue.is_empty t.queue); pollout = false; poll_wq = Some t.wq });
    fop_fasync = (fun _task _file ~on:_ -> ());
  }

let register t ~path =
  let dev = Defs.make_device ~path ~cls:"input" ~driver:("evdev/" ^ t.name) (file_ops t) in
  Devfs.register (Kernel.devfs t.kernel) dev;
  dev

(* ------------------------------------------------------------------ *)
(* Hardware models                                                     *)
(* ------------------------------------------------------------------ *)

(** A mouse generating [rate_hz] relative-motion reports.  Runs until
    [moves] events have been injected. *)
let start_mouse t ~rate_hz ~moves =
  let eng = Kernel.engine t.kernel in
  let interval = 1_000_000. /. rate_hz in
  Sim.Engine.spawn eng ~name:"mouse-hw" (fun () ->
      for i = 1 to moves do
        Sim.Engine.wait interval;
        let now = Sim.Engine.now eng in
        inject t { time_us = now; ev_type = ev_rel; code = rel_x; value = (i mod 7) - 3 };
        inject t { time_us = now; ev_type = ev_syn; code = 0; value = 0 }
      done)

(** A keyboard typing [keys] at [rate_hz] (press + release pairs). *)
let start_keyboard t ~rate_hz ~keys =
  let eng = Kernel.engine t.kernel in
  let interval = 1_000_000. /. rate_hz in
  Sim.Engine.spawn eng ~name:"kbd-hw" (fun () ->
      List.iter
        (fun keycode ->
          Sim.Engine.wait interval;
          let now = Sim.Engine.now eng in
          inject t { time_us = now; ev_type = ev_key; code = keycode; value = 1 };
          inject t { time_us = now; ev_type = ev_key; code = keycode; value = 0 };
          inject t { time_us = now; ev_type = ev_syn; code = 0; value = 0 })
        keys)
