(** Input devices: the evdev event interface plus mouse/keyboard
    hardware models, with the §6.1.5 latency probe built in. *)

type event = { time_us : float; ev_type : int; code : int; value : int }

val ev_syn : int
val ev_key : int
val ev_rel : int
val rel_x : int
val rel_y : int
val event_bytes : int
val encode_event : event -> bytes
val decode_event : bytes -> int -> event

(** The evdev ioctl surface: identity, autorepeat get/set, exclusive
    grab (value argument: nonzero grabs, zero releases). *)

val eviocgid : int
val eviocgrep : int
val eviocsrep : int
val eviocgrab : int
val rep_delay_max : int
val rep_period_max : int
val id_bustype : int
val id_vendor : int
val id_product : int
val id_version : int

type t

(** [delivery_latency_us]: USB + input-core path between the physical
    event and the evdev queue (~38 us natively, +16 under device
    assignment — §6.1.5). *)
val create : ?delivery_latency_us:float -> Oskit.Kernel.t -> name:string -> t

(** Per-event latency from physical report to the read that collected
    it reaching the driver — the paper's §6.1.5 metric. *)
val read_latencies : t -> float list

(** Events queued but not yet read — lets a batching reader size one
    multi-op descriptor to drain the backlog in a single ring slot. *)
val pending_events : t -> int

(** Events lost to queue overflow. *)
val dropped_events : t -> int

(** Current autorepeat [(delay_ms, period_ms)]. *)
val autorepeat : t -> int * int

(** Hardware-side event injection. *)
val inject : t -> event -> unit

val file_ops : t -> Oskit.Defs.file_ops
val register : t -> path:string -> Oskit.Defs.device

(** Hardware models: a mouse emitting [moves] relative motions at
    [rate_hz]; a keyboard typing [keys] (press+release). *)
val start_mouse : t -> rate_hz:float -> moves:int -> unit

val start_keyboard : t -> rate_hz:float -> keys:int list -> unit
