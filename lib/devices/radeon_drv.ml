(** DRM/Radeon-like GPU driver.

    Exposes the device-file interface ({!Oskit.Defs.file_ops}) over the
    {!Gpu_hw} model: GEM buffer objects in VRAM or GTT, command
    submission with nested-copy chunk structures, fences, mmap of
    buffer objects, and the optional device-data-isolation mode — the
    analogue of the ~400 LoC the paper added to the Radeon driver
    (§5.3), implemented as the [isolation] field and the four change
    sets it triggers:

    (i)   GTT pages come from the hypervisor's protected per-region
          pools and are IOMMU-mapped through region-tagged requests;
    (ii)  per-region GART tables are created in each region's VRAM
          slice;
    (iii) the driver never touches the memory-controller MMIO page
          (the hypervisor owns it) — bounds follow the active region;
    (iv)  writes to protected VRAM buffers (the GART table) go through
          a hypercall, and the fence interrupt-reason buffer is
          disabled: every interrupt is interpreted as a fence. *)

open Oskit

type storage =
  | Gtt of { gpas : int array; spas : int array; mutable dma : int option }
  | Vram_bo of { offset : int } (* byte offset into the VRAM aperture *)

type bo = {
  handle : int;
  size : int;
  pages : int;
  storage : storage;
  owner_file : int;
}

type client = Local | Guest of int (* vm id *)

type t = {
  kernel : Kernel.t; (* the kernel hosting this driver *)
  gpu : Gpu_hw.t;
  iommu : Memory.Iommu.t;
  bar_gpa : int; (* driver-VM gpa of the VRAM BAR *)
  mc_mmio_gpa : int option; (* gpa of the MC register page, if mapped *)
  vram_alloc : Memory.Allocator.t; (* offsets within the aperture *)
  bos : (int * int, bo) Hashtbl.t; (* (file_id, handle) -> bo *)
  mmap_index : (int, int * int) Hashtbl.t; (* pgoff -> (file_id, handle) *)
  mutable next_handle : int;
  mutable next_dma : int;
  fence_wq : Wait_queue.t;
  mutable emitted_fence : int;
  mutable completed_fence : int; (* contiguous prefix of completed fences *)
  completed_set : (int, unit) Hashtbl.t;
      (* out-of-order completions beyond the prefix: under fair
         scheduling another client's later fence may retire first *)
  mutable isolation : isolation option;
  (* protected pool pages the driver donated at init: spa -> gpa *)
  pool_gpa_of_spa : (int, int) Hashtbl.t;
  (* per-region VRAM offset allocators (isolation mode) *)
  region_vram_allocs : (int, Memory.Allocator.t) Hashtbl.t;
  mutable region_switch_cost_us : float; (* charged per IOMMU entry on switch *)
  mutable irq_reason_gpa : int option; (* reason buffer (non-isolated mode) *)
  mutable stats_cs : int;
  mutable stats_region_switches : int;
  (* extensions beyond the paper's prototype *)
  mutable protect_command_streamer : bool; (* §8: reject dangerous registers *)
  mutable watchdog_timeout_us : float; (* fence timeout before GPU reset *)
  mutable stats_recoveries : int;
  mutable vsync_hz : float; (* software-emulated VSync (§5.3 extension) *)
}

and isolation = { mgr : Hypervisor.Region.t }

let page_size = Memory.Addr.page_size

let gart_table_pages = 1 (* per region, at the start of each VRAM slice *)

let create ~kernel ~gpu ~iommu ~bar_gpa ~mc_mmio_gpa =
  {
    kernel;
    gpu;
    iommu;
    bar_gpa;
    mc_mmio_gpa = Some mc_mmio_gpa;
    vram_alloc =
      Memory.Allocator.create ~base:0 ~size:(Gpu_hw.vram_bytes gpu);
    bos = Hashtbl.create 64;
    mmap_index = Hashtbl.create 64;
    next_handle = 1;
    next_dma = 0x100000;
    fence_wq = Wait_queue.create (Kernel.engine kernel);
    emitted_fence = 0;
    completed_fence = 0;
    completed_set = Hashtbl.create 16;
    isolation = None;
    pool_gpa_of_spa = Hashtbl.create 64;
    region_vram_allocs = Hashtbl.create 4;
    region_switch_cost_us = 0.6;
    irq_reason_gpa = None;
    stats_cs = 0;
    stats_region_switches = 0;
    protect_command_streamer = false;
    watchdog_timeout_us = infinity; (* opt-in: see set_watchdog_timeout *)
    stats_recoveries = 0;
    vsync_hz = 60.;
  }

let gpu t = t.gpu
let completed_fence t = t.completed_fence
let stats_cs t = t.stats_cs
let stats_region_switches t = t.stats_region_switches
let stats_recoveries t = t.stats_recoveries
let set_command_streamer_protection t on = t.protect_command_streamer <- on
let set_watchdog_timeout t us = t.watchdog_timeout_us <- us
let set_vsync_hz t hz = t.vsync_hz <- hz

(** Fair per-guest GPU scheduling (§8's TimeGraph suggestion). *)
let set_fair_scheduling t on =
  Gpu_hw.set_scheduling t.gpu (if on then Gpu_hw.Fair else Gpu_hw.Fifo)

(* ------------------------------------------------------------------ *)
(* Initialisation                                                      *)
(* ------------------------------------------------------------------ *)

(** Non-isolated initialisation: program the MC bounds wide open
    through the MMIO page and set up the interrupt-reason buffer in
    driver system memory, DMA-mapped for the device. *)
let init_native t =
  (match t.mc_mmio_gpa with
  | Some gpa ->
      let vm = Kernel.vm t.kernel in
      let b = Bytes.create 8 in
      Bytes.set_int64_le b 0 (Int64.of_int (Gpu_hw.vram_base t.gpu));
      Hypervisor.Vm.write_gpa vm ~gpa:(gpa + Mem_ctrl.reg_low_bound) b;
      Bytes.set_int64_le b 0
        (Int64.of_int (Gpu_hw.vram_base t.gpu + Gpu_hw.vram_bytes t.gpu));
      Hypervisor.Vm.write_gpa vm ~gpa:(gpa + Mem_ctrl.reg_high_bound) b
  | None -> ());
  (* interrupt-reason buffer: one driver RAM page, device-writable *)
  let vm = Kernel.vm t.kernel in
  let gpa = Hypervisor.Vm.alloc_gpa_page vm in
  let spa =
    match Memory.Ept.lookup (Hypervisor.Vm.ept vm) ~gpa with
    | Some (spa, _) -> spa
    | None -> assert false
  in
  let dma = t.next_dma in
  t.next_dma <- t.next_dma + page_size;
  Memory.Iommu.map t.iommu ~dma ~spa ~perms:Memory.Perm.rw ~region:None;
  Gpu_hw.set_irq_status_buffer t.gpu (Some dma);
  t.irq_reason_gpa <- Some gpa;
  Gpu_hw.bind_irq t.gpu (fun () ->
      (* read the reason from system memory, as Evergreen does *)
      let reason =
        Int32.to_int
          (Bytes.get_int32_le (Hypervisor.Vm.read_gpa vm ~gpa ~len:4) 0)
      in
      if reason = Gpu_hw.fence_reason_code then begin
        let seq =
          Int32.to_int
            (Bytes.get_int32_le (Hypervisor.Vm.read_gpa vm ~gpa:(gpa + 4) ~len:4) 0)
        in
        Hashtbl.replace t.completed_set seq ();
        (* compact the contiguous prefix *)
        while Hashtbl.mem t.completed_set (t.completed_fence + 1) do
          Hashtbl.remove t.completed_set (t.completed_fence + 1);
          t.completed_fence <- t.completed_fence + 1
        done;
        Wait_queue.wake_all t.fence_wq
      end)

(** Data-isolation initialisation (§5.3).  Runs during the driver-VM
    boot window, when the driver is still trusted: donates its GTT
    page pools to the hypervisor, registers the MC bounds setter, sets
    up per-region GART tables, and switches to fence-only interrupt
    accounting (no readable reason buffer). *)
let init_isolated t ~mgr ~pool_pages =
  t.isolation <- Some { mgr };
  (* remember the gpa of every donated pool page so insert_pfn can
     name them later *)
  List.iter
    (fun (gpa, spa) -> Hashtbl.replace t.pool_gpa_of_spa (Memory.Addr.pfn spa) gpa)
    pool_pages;
  (* the hypervisor owns the MC: clamp bounds on region switches *)
  Hypervisor.Region.install_dev_bounds_setter mgr (fun ~low ~high ->
      Mem_ctrl.set_bounds (Gpu_hw.mem_ctrl t.gpu) ~low ~high);
  (* change (ii): a GART table at the base of each region's slice,
     written through the hypercall of change (iv) *)
  let n_regions =
    let rec count i =
      match Hypervisor.Region.dev_slice mgr i with
      | _ -> count (i + 1)
      | exception Hypervisor.Region.Isolation_violation _ -> i
    in
    count 0
  in
  for rid = 0 to n_regions - 1 do
    let base, _ = Hypervisor.Region.dev_slice mgr rid in
    Hypervisor.Region.hyp_write_dev_mem mgr ~rid ~spa:base
      ~data:(Bytes.make 16 '\000')
  done;
  (* change (iv): no reason buffer; every interrupt is a fence *)
  Gpu_hw.set_irq_status_buffer t.gpu None;
  Gpu_hw.bind_irq t.gpu (fun () ->
      if t.completed_fence < t.emitted_fence then
        t.completed_fence <- t.completed_fence + 1;
      Wait_queue.wake_all t.fence_wq)

(* ------------------------------------------------------------------ *)
(* Client and region resolution                                        *)
(* ------------------------------------------------------------------ *)

let client_of (task : Defs.task) =
  match task.Defs.remote with
  | None -> Local
  | Some rc -> Guest (Hypervisor.Vm.id rc.Defs.rc_target)

let region_of t task =
  match (t.isolation, client_of task) with
  | None, _ -> None
  | Some { mgr }, Guest vm_id -> (
      match Hypervisor.Region.region_of_guest mgr vm_id with
      | Some rid -> Some (mgr, rid)
      | None -> Errno.fail Errno.EACCES "guest has no protected region")
  | Some _, Local ->
      (* With isolation enabled only guests use the GPU. *)
      Errno.fail Errno.EACCES "local access disabled under data isolation"

(* ------------------------------------------------------------------ *)
(* Buffer objects                                                      *)
(* ------------------------------------------------------------------ *)

let alloc_gtt_pages t task pages =
  match region_of t task with
  | None ->
      let vm = Kernel.vm t.kernel in
      let gpas = Array.init pages (fun _ -> Hypervisor.Vm.alloc_gpa_page vm) in
      let spas =
        Array.map
          (fun gpa ->
            match Memory.Ept.lookup (Hypervisor.Vm.ept vm) ~gpa with
            | Some (spa, _) -> spa
            | None -> assert false)
          gpas
      in
      (gpas, spas)
  | Some (mgr, rid) ->
      (* change (i): pages come from the region's protected pool *)
      let spas =
        Array.init pages (fun _ ->
            try Hypervisor.Region.alloc_protected_page mgr ~rid
            with Hypervisor.Region.Isolation_violation m -> Errno.fail Errno.ENOMEM m)
      in
      let gpas =
        Array.map
          (fun spa ->
            match Hashtbl.find_opt t.pool_gpa_of_spa (Memory.Addr.pfn spa) with
            | Some gpa -> gpa
            | None -> Errno.fail Errno.ENOMEM "pool page without known gpa")
          spas
      in
      (gpas, spas)

(** Write GART PTEs for a GTT bo.  Non-isolated: plain store through
    the BAR.  Isolated: the GART table lives in protected VRAM, so the
    driver must hypercall (change (iv)). *)
let write_gart_entries t task ~dma ~spas =
  let entry_bytes = Array.length spas * 8 in
  let data = Bytes.create entry_bytes in
  Array.iteri (fun i spa -> Bytes.set_int64_le data (i * 8) (Int64.of_int spa)) spas;
  (* entry slot derived from the dma pfn; the modelled table holds 128
     entries and the GPU's real translation happens in the IOMMU *)
  let table_off = ((dma lsr 12) land 0x7f) * 8 in
  let data =
    if table_off + entry_bytes > page_size then Bytes.sub data 0 (page_size - table_off)
    else data
  in
  match region_of t task with
  | None ->
      let vm = Kernel.vm t.kernel in
      Hypervisor.Vm.write_gpa vm ~gpa:(t.bar_gpa + table_off) data
  | Some (mgr, rid) ->
      let base, _ = Hypervisor.Region.dev_slice mgr rid in
      Hypervisor.Region.hyp_write_dev_mem mgr ~rid ~spa:(base + table_off) ~data

let bind_gtt t task bo =
  match bo.storage with
  | Vram_bo _ -> ()
  | Gtt g ->
      if g.dma = None then begin
        let dma = t.next_dma in
        t.next_dma <- t.next_dma + (bo.pages * page_size);
        (match region_of t task with
        | None ->
            Array.iteri
              (fun i spa ->
                Memory.Iommu.map t.iommu ~dma:(dma + (i * page_size)) ~spa
                  ~perms:Memory.Perm.rw ~region:None)
              g.spas
        | Some (mgr, rid) ->
            Array.iteri
              (fun i spa ->
                try
                  Hypervisor.Region.request_iommu_map mgr ~rid
                    ~dma:(dma + (i * page_size)) ~spa ~perms:Memory.Perm.rw
                with Hypervisor.Region.Isolation_violation m ->
                  Errno.fail Errno.EFAULT m)
              g.spas);
        write_gart_entries t task ~dma ~spas:g.spas;
        g.dma <- Some dma
      end

let location_of t task bo =
  bind_gtt t task bo;
  match bo.storage with
  | Gtt { dma = Some dma; _ } -> Gpu_hw.Sys_dma dma
  | Gtt { dma = None; _ } -> assert false
  | Vram_bo { offset } -> Gpu_hw.Vram offset

let find_bo t (file : Defs.file) handle =
  match Hashtbl.find_opt t.bos (file.Defs.file_id, handle) with
  | Some bo -> bo
  | None -> Errno.fail Errno.EINVAL "no such buffer object"

(** VRAM offsets: a global allocator normally; under isolation, one per
    region slice (past its GART table), so guests partition the device
    memory — the §4.2 consequence that "benchmarks with data isolation
    can use a maximum of 512MB" in the paper's setup. *)
let alloc_vram_offset t task pages =
  match region_of t task with
  | None -> Memory.Allocator.alloc_range t.vram_alloc pages
  | Some (mgr, rid) ->
      let alloc =
        match Hashtbl.find_opt t.region_vram_allocs rid with
        | Some a -> a
        | None ->
            let base, slice_pages = Hypervisor.Region.dev_slice mgr rid in
            let usable_base =
              base - Gpu_hw.vram_base t.gpu + (gart_table_pages * page_size)
            in
            let a =
              Memory.Allocator.create ~base:usable_base
                ~size:((slice_pages - gart_table_pages) * page_size)
            in
            Hashtbl.replace t.region_vram_allocs rid a;
            a
      in
      (try Memory.Allocator.alloc_range alloc pages
       with Out_of_memory -> Errno.fail Errno.ENOSPC "region VRAM slice exhausted")

(* ------------------------------------------------------------------ *)
(* ioctl handlers                                                      *)
(* ------------------------------------------------------------------ *)

let arg_addr arg = Int64.to_int arg

let handle_gem_create t task file ~arg =
  let uaddr = arg_addr arg in
  let data = Uaccess.copy_from_user task ~uaddr ~len:Radeon_ioctl.gem_create_size in
  let size =
    Int64.to_int (Bytes.get_int64_le data Radeon_ioctl.gem_create_off_size)
  in
  let domain =
    Int32.to_int (Bytes.get_int32_le data Radeon_ioctl.gem_create_off_domain)
  in
  if size <= 0 then Errno.fail Errno.EINVAL "gem_create: bad size";
  let pages = Memory.Addr.pages_spanned ~addr:0 ~len:size in
  let storage =
    if domain = Radeon_ioctl.domain_vram then
      Vram_bo { offset = alloc_vram_offset t task pages }
    else begin
      let gpas, spas = alloc_gtt_pages t task pages in
      Gtt { gpas; spas; dma = None }
    end
  in
  let handle = t.next_handle in
  t.next_handle <- handle + 1;
  let bo = { handle; size; pages; storage; owner_file = file.Defs.file_id } in
  Hashtbl.replace t.bos (file.Defs.file_id, handle) bo;
  (* write the handle back into the user struct *)
  Bytes.set_int32_le data Radeon_ioctl.gem_create_off_handle (Int32.of_int handle);
  Uaccess.copy_to_user task ~uaddr data;
  0

let handle_gem_mmap t task file ~arg =
  let uaddr = arg_addr arg in
  let data = Uaccess.copy_from_user task ~uaddr ~len:Radeon_ioctl.gem_mmap_size in
  let handle =
    Int32.to_int (Bytes.get_int32_le data Radeon_ioctl.gem_mmap_off_handle)
  in
  let bo = find_bo t file handle in
  (* fake mmap offset identifying the bo, like GEM's mmap cookie *)
  let pgoff = handle lsl 8 in
  Hashtbl.replace t.mmap_index pgoff (file.Defs.file_id, handle);
  Bytes.set_int64_le data Radeon_ioctl.gem_mmap_off_size (Int64.of_int bo.size);
  Bytes.set_int64_le data Radeon_ioctl.gem_mmap_off_addr
    (Int64.of_int (pgoff * page_size));
  Uaccess.copy_to_user task ~uaddr data;
  0

let handle_gem_close t task file ~arg =
  let uaddr = arg_addr arg in
  let data = Uaccess.copy_from_user task ~uaddr ~len:Radeon_ioctl.gem_close_size in
  let handle = Int32.to_int (Bytes.get_int32_le data 0) in
  let bo = find_bo t file handle in
  (match bo.storage with
  | Gtt g ->
      (match g.dma with
      | Some dma -> (
          match region_of t task with
          | None ->
              Array.iteri
                (fun i _ -> Memory.Iommu.unmap t.iommu ~dma:(dma + (i * page_size)))
                g.spas
          | Some (mgr, rid) ->
              Array.iteri
                (fun i _ ->
                  Hypervisor.Region.request_iommu_unmap mgr ~rid
                    ~dma:(dma + (i * page_size)))
                g.spas)
      | None -> ());
      (match region_of t task with
      | None ->
          Array.iter (Hypervisor.Vm.free_gpa_page (Kernel.vm t.kernel)) g.gpas
      | Some (mgr, rid) ->
          Array.iter
            (fun spa -> Hypervisor.Region.free_protected_page mgr ~rid ~spa)
            g.spas)
  | Vram_bo { offset } -> (
      match region_of t task with
      | None -> Memory.Allocator.free_page t.vram_alloc offset
      | Some (_, rid) -> (
          match Hashtbl.find_opt t.region_vram_allocs rid with
          | Some a -> Memory.Allocator.free_page a offset
          | None -> ())));
  Hashtbl.remove t.bos (file.Defs.file_id, handle);
  Hashtbl.remove t.mmap_index (handle lsl 8);
  0

(** Parse the IB chunk into GPU commands, resolving reloc indices
    through the RELOCS chunk. *)
let parse_ib t task file ~ib ~relocs =
  let n = Bytes.length ib / 4 in
  (* every dword index comes from guest-controlled packet headers
     (including ntex below, which scales a read run): reads past the
     chunk are malformed submissions, not programming errors *)
  let u32 i =
    if i < 0 || i >= n then Errno.fail Errno.EINVAL "truncated IB packet";
    Int32.to_int (Bytes.get_int32_le ib (i * 4)) land 0xffffffff
  in
  let reloc_bo idx =
    if idx < 0 || idx >= Array.length relocs then
      Errno.fail Errno.EINVAL "reloc index out of range";
    find_bo t file relocs.(idx)
  in
  let cmds = ref [] in
  let pos = ref 0 in
  while !pos < n do
    let op = u32 !pos in
    if op = Radeon_ioctl.pkt_draw then begin
      let vertices = u32 (!pos + 1)
      and width = u32 (!pos + 2)
      and height = u32 (!pos + 3)
      and ntex = u32 (!pos + 4) in
      (* texture relocs must fit inside the chunk; checking before
         List.init keeps a hostile count from sizing the list *)
      if ntex > n - !pos - 5 then Errno.fail Errno.EINVAL "truncated IB packet";
      let textures =
        List.init ntex (fun i -> location_of t task (reloc_bo (u32 (!pos + 5 + i))))
      in
      cmds := Gpu_hw.Draw { vertices; width; height; textures } :: !cmds;
      pos := !pos + 5 + ntex
    end
    else if op = Radeon_ioctl.pkt_compute then begin
      let order = u32 (!pos + 1) in
      let a = location_of t task (reloc_bo (u32 (!pos + 2)))
      and b = location_of t task (reloc_bo (u32 (!pos + 3)))
      and out = location_of t task (reloc_bo (u32 (!pos + 4))) in
      let full = u32 (!pos + 5) <> 0 in
      cmds := Gpu_hw.Compute_matmul { order; a; b; out; full } :: !cmds;
      pos := !pos + 6
    end
    else if op = Radeon_ioctl.pkt_blit then begin
      let src = location_of t task (reloc_bo (u32 (!pos + 1)))
      and dst = location_of t task (reloc_bo (u32 (!pos + 2))) in
      let len = u32 (!pos + 3) in
      cmds := Gpu_hw.Blit { src; dst; len } :: !cmds;
      pos := !pos + 4
    end
    else if op = Radeon_ioctl.pkt_reg_write then begin
      (* The driver forwards raw register writes from the command
         stream unchecked — the §8 attack surface.  With the
         command-streamer protection extension enabled, writes to
         dangerous registers are rejected before reaching the GPU. *)
      let reg = u32 (!pos + 1) and value = u32 (!pos + 2) in
      if t.protect_command_streamer && reg = Gpu_hw.reg_clock_ctl then
        Errno.fail Errno.EACCES "protected register";
      cmds := Gpu_hw.Reg_write { reg; value } :: !cmds;
      pos := !pos + 3
    end
    else Errno.fail Errno.EINVAL "bad IB packet"
  done;
  List.rev !cmds

(** The CS ioctl: the canonical nested-copy command (§4.1).  The main
    struct holds a pointer to an array of chunk pointers; each chunk
    header holds a pointer to chunk data — three levels of
    copy_from_user whose arguments come from previous copies. *)
let handle_cs t task file ~arg =
  let uaddr = arg_addr arg in
  let data = Uaccess.copy_from_user task ~uaddr ~len:Radeon_ioctl.cs_size in
  let num_chunks =
    Int32.to_int (Bytes.get_int32_le data Radeon_ioctl.cs_off_num_chunks)
  in
  let chunks_ptr =
    Int64.to_int (Bytes.get_int64_le data Radeon_ioctl.cs_off_chunks_ptr)
  in
  if num_chunks <= 0 || num_chunks > 16 then
    Errno.fail Errno.EINVAL "cs: bad chunk count";
  (* nested copy #1: the array of chunk-header pointers *)
  let ptr_array =
    Uaccess.copy_from_user task ~uaddr:chunks_ptr ~len:(num_chunks * 8)
  in
  let ib = ref Bytes.empty and relocs = ref [||] in
  for i = 0 to num_chunks - 1 do
    let hdr_ptr = Int64.to_int (Bytes.get_int64_le ptr_array (i * 8)) in
    (* nested copy #2: the chunk header *)
    let hdr =
      Uaccess.copy_from_user task ~uaddr:hdr_ptr
        ~len:Radeon_ioctl.cs_chunk_header_size
    in
    let chunk_id =
      Int32.to_int (Bytes.get_int32_le hdr Radeon_ioctl.chunk_off_id)
    in
    let length_dw =
      Int32.to_int (Bytes.get_int32_le hdr Radeon_ioctl.chunk_off_length_dw)
    in
    let data_ptr = Int64.to_int (Bytes.get_int64_le hdr Radeon_ioctl.chunk_off_data) in
    if length_dw < 0 || length_dw > 16384 then
      Errno.fail Errno.EINVAL "cs: chunk too large";
    (* nested copy #3: the chunk payload *)
    let payload = Uaccess.copy_from_user task ~uaddr:data_ptr ~len:(length_dw * 4) in
    if chunk_id = Radeon_ioctl.chunk_id_ib then ib := payload
    else if chunk_id = Radeon_ioctl.chunk_id_relocs then
      relocs :=
        Array.init length_dw (fun j ->
            Int32.to_int (Bytes.get_int32_le payload (j * 4)))
    else Errno.fail Errno.EINVAL "cs: unknown chunk id"
  done;
  let cmds = parse_ib t task file ~ib:!ib ~relocs:!relocs in
  (* under data isolation, make the device work on this guest's region *)
  (match region_of t task with
  | Some (mgr, rid) ->
      let touched = Hypervisor.Region.switch_region mgr ~rid in
      if touched > 0 then begin
        t.stats_region_switches <- t.stats_region_switches + 1;
        Kernel.charge t.kernel (float_of_int touched *. t.region_switch_cost_us)
      end
  | None -> ());
  (* tag submissions with the client so fair scheduling (§8) can
     interleave guests at command granularity *)
  let client = match client_of task with Local -> 0 | Guest id -> id + 1 in
  List.iter (Gpu_hw.submit ~client t.gpu) cmds;
  t.emitted_fence <- t.emitted_fence + 1;
  let fence = t.emitted_fence in
  Gpu_hw.submit ~client t.gpu (Gpu_hw.Fence fence);
  t.stats_cs <- t.stats_cs + 1;
  (* report the fence back through the struct *)
  Bytes.set_int64_le data Radeon_ioctl.cs_off_fence (Int64.of_int fence);
  Uaccess.copy_to_user task ~uaddr data;
  0

let fence_complete t fence =
  fence <= t.completed_fence || Hashtbl.mem t.completed_set fence

(** Recover a broken GPU (§8's suggested mitigation): reset the core,
    abandon in-flight work, and complete outstanding fences with an
    error so waiters do not hang — the lightweight analogue of
    restarting the driver VM. *)
let recover t =
  Gpu_hw.reset t.gpu;
  t.stats_recoveries <- t.stats_recoveries + 1;
  t.completed_fence <- t.emitted_fence;
  Hashtbl.reset t.completed_set;
  Wait_queue.wake_all t.fence_wq

(** Fence wait with an optional watchdog: a GPU that stops retiring
    fences (wedged by a malicious command stream) is detected and
    reset.  The timeout must exceed the longest legitimate command
    (a big GPGPU kernel can run for many seconds), so the watchdog is
    opt-in via {!set_watchdog_timeout}. *)
let wait_for_fence t fence =
  if Float.is_finite t.watchdog_timeout_us then begin
    let deadline_missed = ref false in
    while (not (fence_complete t fence)) && not !deadline_missed do
      if not (Wait_queue.sleep_timeout t.fence_wq ~timeout:t.watchdog_timeout_us)
      then deadline_missed := true
    done;
    if !deadline_missed && not (fence_complete t fence) then begin
      recover t;
      Errno.fail Errno.EIO "GPU hung; device was reset"
    end
  end
  else
    while not (fence_complete t fence) do
      Wait_queue.sleep t.fence_wq
    done

let handle_wait_idle t task ~arg =
  let uaddr = arg_addr arg in
  let (_ : bytes) =
    Uaccess.copy_from_user task ~uaddr ~len:Radeon_ioctl.gem_wait_idle_size
  in
  wait_for_fence t t.emitted_fence;
  0

(** INFO: reads a request struct, then writes a u64 result at the
    user pointer found *inside* that struct — the second nested
    pattern the analyzer must extract (§4.1). *)
let handle_info t task ~arg =
  let uaddr = arg_addr arg in
  let data = Uaccess.copy_from_user task ~uaddr ~len:Radeon_ioctl.info_size in
  let request =
    Int32.to_int (Bytes.get_int32_le data Radeon_ioctl.info_off_request)
  in
  let value_ptr =
    Int64.to_int (Bytes.get_int64_le data Radeon_ioctl.info_off_value_ptr)
  in
  let value =
    if request = Radeon_ioctl.info_device_id then 0x6779 (* HD 6450 *)
    else if request = Radeon_ioctl.info_num_gb_pipes then 2
    else if request = Radeon_ioctl.info_accel_working then 1
    else if request = Radeon_ioctl.info_vram_usage then Gpu_hw.vram_bytes t.gpu
    else Errno.fail Errno.EINVAL "info: unknown request"
  in
  let out = Bytes.create 8 in
  Bytes.set_int64_le out 0 (Int64.of_int value);
  Uaccess.copy_to_user task ~uaddr:value_ptr out;
  0

(** Software-emulated VSync (the §5.3 extension): data isolation
    disables the hardware VSync interrupt, so the driver paces frames
    with a timer instead.  Blocks until the next frame boundary. *)
let handle_wait_vsync t () =
  let interval = 1_000_000. /. t.vsync_hz in
  let now = Sim.Engine.now (Kernel.engine t.kernel) in
  let next = (Float.of_int (int_of_float (now /. interval)) +. 1.) *. interval in
  Sim.Engine.wait (next -. now);
  0

let handle_set_tiling _t task ~arg =
  (* accepts and ignores tiling parameters; exercises the plain
     macro-decodable _IOWR path *)
  let uaddr = arg_addr arg in
  let data = Uaccess.copy_from_user task ~uaddr ~len:Radeon_ioctl.set_tiling_size in
  Uaccess.copy_to_user task ~uaddr data;
  0

(* ------------------------------------------------------------------ *)
(* mmap / fault                                                        *)
(* ------------------------------------------------------------------ *)

let bo_of_vma t (vma : Defs.vma) =
  match Hashtbl.find_opt t.mmap_index vma.Defs.vma_pgoff with
  | Some key -> (
      match Hashtbl.find_opt t.bos key with
      | Some bo -> bo
      | None -> Errno.fail Errno.EINVAL "stale mmap cookie")
  | None -> Errno.fail Errno.EINVAL "mmap offset does not name a buffer object"

(** Map one page of a bo into the faulting process.  GTT pages map by
    their driver gpa; VRAM pages map through the BAR. *)
let map_bo_page t task bo ~gva ~page_index =
  if page_index < 0 || page_index >= bo.pages then
    Errno.fail Errno.EFAULT "fault beyond buffer object";
  let page_gpa =
    match bo.storage with
    | Gtt { gpas; _ } -> gpas.(page_index)
    | Vram_bo { offset } -> t.bar_gpa + offset + (page_index * page_size)
  in
  Uaccess.insert_pfn task ~gva ~page_gpa ~perms:Memory.Perm.rw

let handle_mmap _t _task _file (_vma : Defs.vma) =
  (* lazy: pages arrive via the fault handler, like the real driver's
     TTM fault path *)
  ()

let handle_fault t task file (vma : Defs.vma) ~gva =
  ignore file;
  let bo = bo_of_vma t vma in
  let page_index = (gva - vma.Defs.vma_start) / page_size in
  map_bo_page t task bo ~gva ~page_index

(* ------------------------------------------------------------------ *)
(* file_ops                                                            *)
(* ------------------------------------------------------------------ *)

let release t _task (file : Defs.file) =
  (* drop every bo owned by this open, like DRM file teardown *)
  let owned =
    Hashtbl.fold
      (fun (fid, handle) _ acc ->
        if fid = file.Defs.file_id then handle :: acc else acc)
      t.bos []
  in
  List.iter
    (fun handle ->
      Hashtbl.remove t.bos (file.Defs.file_id, handle);
      Hashtbl.remove t.mmap_index (handle lsl 8))
    owned

let file_ops t =
  {
    Defs.default_ops with
    Defs.fop_kinds =
      [ Os_flavor.Open; Os_flavor.Release; Os_flavor.Ioctl; Os_flavor.Mmap;
        Os_flavor.Fault; Os_flavor.Poll ];
    fop_ioctl =
      (fun task file ~cmd ~arg ->
        if cmd = Radeon_ioctl.gem_create then handle_gem_create t task file ~arg
        else if cmd = Radeon_ioctl.gem_mmap then handle_gem_mmap t task file ~arg
        else if cmd = Radeon_ioctl.gem_close then handle_gem_close t task file ~arg
        else if cmd = Radeon_ioctl.cs then handle_cs t task file ~arg
        else if cmd = Radeon_ioctl.gem_wait_idle then handle_wait_idle t task ~arg
        else if cmd = Radeon_ioctl.info then handle_info t task ~arg
        else if cmd = Radeon_ioctl.set_tiling then handle_set_tiling t task ~arg
        else if cmd = Radeon_ioctl.wait_vsync then handle_wait_vsync t ()
        else Errno.fail Errno.ENOTTY "unknown radeon ioctl");
    fop_mmap = (fun task file vma -> handle_mmap t task file vma);
    fop_fault = (fun task file vma ~gva -> handle_fault t task file vma ~gva);
    fop_release = (fun task file -> release t task file);
    fop_poll =
      (fun _ _ ~want_in:_ ~want_out:_ ->
        { Defs.pollin = true; pollout = true; poll_wq = None });
  }

(** Register the GPU as /dev/dri/card0 in the driver kernel. *)
let register t =
  let dev =
    Defs.make_device ~path:"/dev/dri/card0" ~cls:"gpu" ~driver:"radeon"
      (file_ops t)
  in
  Devfs.register (Kernel.devfs t.kernel) dev;
  dev
