(** Camera: a UVC-like hardware model under a V4L2-like driver.

    The streaming interface the paper's GUVCview benchmark exercises
    (§6.1.6): REQBUFS allocates frame buffers, the application mmaps
    and queues them, STREAMON starts the sensor, DQBUF blocks until a
    filled frame is available.  The sensor fills one queued buffer
    every frame interval — the ~29.5 FPS the camera delivers at every
    resolution regardless of configuration. *)

open Oskit

(* V4L2-ish ioctl numbers *)
let vidioc_reqbufs = Ioctl_num.iowr ~typ:'V' ~nr:8 ~size:8 (* { count u32; pad } *)
let vidioc_querybuf = Ioctl_num.iowr ~typ:'V' ~nr:9 ~size:16 (* { index; pad; offset u64 } *)
let vidioc_qbuf = Ioctl_num.iowr ~typ:'V' ~nr:15 ~size:8 (* { index u32; pad } *)
let vidioc_dqbuf = Ioctl_num.iowr ~typ:'V' ~nr:17 ~size:8 (* { index u32 (out); pad } *)
let vidioc_streamon = Ioctl_num.io ~typ:'V' ~nr:18
let vidioc_streamoff = Ioctl_num.io ~typ:'V' ~nr:19
let vidioc_s_fmt = Ioctl_num.iowr ~typ:'V' ~nr:5 ~size:8 (* { width u32; height u32 } *)

type buffer = {
  index : int;
  pages : int array; (* driver-VM gpas *)
  mutable queued : bool;
  mutable filled : bool;
  mutable sequence : int;
}

type t = {
  kernel : Kernel.t;
  fps : float;
  mutable width : int;
  mutable height : int;
  mutable buffers : buffer array;
  mutable streaming : bool;
  wq : Wait_queue.t;
  sensor_wq : Wait_queue.t; (* sensor sleeps here when it has nothing to fill *)
  mutable frames_delivered : int;
  mutable sequence : int;
  frame_bytes : unit -> int;
}

let create kernel ~fps =
  let t =
    {
      kernel;
      fps;
      width = 1280;
      height = 720;
      buffers = [||];
      streaming = false;
      wq = Wait_queue.create (Kernel.engine kernel);
      sensor_wq = Wait_queue.create (Kernel.engine kernel);
      frames_delivered = 0;
      sequence = 0;
      frame_bytes = (fun () -> 0);
    }
  in
  (* MJPG frames: modelled as ~1/8 of raw size *)
  { t with frame_bytes = (fun () -> t.width * t.height * 2 / 8) }

let frames_delivered t = t.frames_delivered

(* The sensor: fills the oldest queued buffer each frame period; idles
   (no simulation events) while not streaming or with nothing queued. *)
let fillable t =
  Array.fold_left
    (fun acc b ->
      if b.queued && not b.filled then
        match acc with
        | None -> Some b
        | Some best -> if b.index < best.index then Some b else acc
      else acc)
    None t.buffers

let start_sensor t =
  let eng = Kernel.engine t.kernel in
  Sim.Engine.spawn eng ~name:"uvc-sensor" (fun () ->
      let interval = 1_000_000. /. t.fps in
      let rec loop () =
        if not t.streaming || fillable t = None then Wait_queue.sleep t.sensor_wq
        else begin
          Sim.Engine.wait interval;
          match fillable t with
          | Some b ->
              (* stamp the frame header into the buffer's first page *)
              t.sequence <- t.sequence + 1;
              b.sequence <- t.sequence;
              b.filled <- true;
              let vm = Kernel.vm t.kernel in
              let hdr = Bytes.create 8 in
              Bytes.set_int32_le hdr 0 (Int32.of_int 0xAFAF);
              Bytes.set_int32_le hdr 4 (Int32.of_int t.sequence);
              Hypervisor.Vm.write_gpa vm ~gpa:b.pages.(0) hdr;
              Wait_queue.wake_all t.wq
          | None -> () (* buffer was dequeued while we slept: drop *)
        end;
        loop ()
      in
      loop ())

let buffer_pages t = Memory.Addr.pages_spanned ~addr:0 ~len:(t.frame_bytes ())

let handle_reqbufs t task ~arg =
  let uaddr = Int64.to_int arg in
  let data = Uaccess.copy_from_user task ~uaddr ~len:8 in
  let count = Int32.to_int (Bytes.get_int32_le data 0) in
  if count <= 0 || count > 32 then Errno.fail Errno.EINVAL "reqbufs: bad count";
  (* reallocating the buffer table mid-stream would yank the array out
     from under the sensor and every mmap cookie derived from it; real
     V4L2 refuses with EBUSY while streaming *)
  if t.streaming then Errno.fail Errno.EBUSY "reqbufs: streaming";
  let vm = Kernel.vm t.kernel in
  t.buffers <-
    Array.init count (fun index ->
        {
          index;
          pages =
            Array.init (buffer_pages t) (fun _ -> Hypervisor.Vm.alloc_gpa_page vm);
          queued = false;
          filled = false;
          sequence = 0;
        });
  Uaccess.copy_to_user task ~uaddr data;
  0

let handle_querybuf t task ~arg =
  let uaddr = Int64.to_int arg in
  let data = Uaccess.copy_from_user task ~uaddr ~len:16 in
  let index = Int32.to_int (Bytes.get_int32_le data 0) in
  if index < 0 || index >= Array.length t.buffers then
    Errno.fail Errno.EINVAL "querybuf: bad index";
  (* mmap cookie: buffer index in the page offset *)
  Bytes.set_int64_le data 8 (Int64.of_int (index lsl 8 * Memory.Addr.page_size));
  Uaccess.copy_to_user task ~uaddr data;
  0

let buffer_of_arg t task ~arg =
  let uaddr = Int64.to_int arg in
  let data = Uaccess.copy_from_user task ~uaddr ~len:8 in
  let index = Int32.to_int (Bytes.get_int32_le data 0) in
  if index < 0 || index >= Array.length t.buffers then
    Errno.fail Errno.EINVAL "bad buffer index";
  (t.buffers.(index), uaddr, data)

let handle_qbuf t task ~arg =
  let b, _, _ = buffer_of_arg t task ~arg in
  b.queued <- true;
  b.filled <- false;
  Wait_queue.wake_all t.sensor_wq;
  0

let handle_dqbuf t task file ~arg =
  let _, uaddr, data = buffer_of_arg t task ~arg in
  if not t.streaming then Errno.fail Errno.EINVAL "dqbuf: not streaming";
  let rec find_filled () =
    let filled =
      Array.fold_left
        (fun acc b -> if b.filled then match acc with None -> Some b | s -> s else acc)
        None t.buffers
    in
    match filled with
    | Some b -> b
    | None ->
        if file.Defs.nonblock then Errno.fail Errno.EAGAIN "no frame ready";
        Wait_queue.sleep t.wq;
        find_filled ()
  in
  let b = find_filled () in
  b.filled <- false;
  b.queued <- false;
  t.frames_delivered <- t.frames_delivered + 1;
  Bytes.set_int32_le data 0 (Int32.of_int b.index);
  Uaccess.copy_to_user task ~uaddr data;
  0

let handle_s_fmt t task ~arg =
  let uaddr = Int64.to_int arg in
  let data = Uaccess.copy_from_user task ~uaddr ~len:8 in
  let w = Int32.to_int (Bytes.get_int32_le data 0)
  and h = Int32.to_int (Bytes.get_int32_le data 4) in
  if w <= 0 || h <= 0 || w > 4096 || h > 4096 then
    Errno.fail Errno.EINVAL "s_fmt: bad resolution";
  (* growing the frame size mid-stream would outgrow buffers already
     allocated and mapped at the old size *)
  if t.streaming then Errno.fail Errno.EBUSY "s_fmt: streaming";
  t.width <- w;
  t.height <- h;
  Uaccess.copy_to_user task ~uaddr data;
  0

let file_ops t =
  {
    Defs.default_ops with
    Defs.fop_kinds =
      [ Os_flavor.Open; Os_flavor.Release; Os_flavor.Ioctl; Os_flavor.Mmap;
        Os_flavor.Fault; Os_flavor.Poll ];
    fop_ioctl =
      (fun task file ~cmd ~arg ->
        if cmd = vidioc_reqbufs then handle_reqbufs t task ~arg
        else if cmd = vidioc_querybuf then handle_querybuf t task ~arg
        else if cmd = vidioc_qbuf then handle_qbuf t task ~arg
        else if cmd = vidioc_dqbuf then handle_dqbuf t task file ~arg
        else if cmd = vidioc_streamon then begin
          t.streaming <- true;
          Wait_queue.wake_all t.sensor_wq;
          0
        end
        else if cmd = vidioc_streamoff then begin
          t.streaming <- false;
          0
        end
        else if cmd = vidioc_s_fmt then handle_s_fmt t task ~arg
        else Errno.fail Errno.ENOTTY "unknown v4l2 ioctl");
    fop_mmap = (fun _ _ _ -> ());
    fop_fault =
      (fun task _file vma ~gva ->
        let index = vma.Defs.vma_pgoff lsr 8 in
        if index < 0 || index >= Array.length t.buffers then
          Errno.fail Errno.EFAULT "fault: stale camera mapping";
        let b = t.buffers.(index) in
        let page = (gva - vma.Defs.vma_start) / Memory.Addr.page_size in
        if page >= Array.length b.pages then Errno.fail Errno.EFAULT "fault beyond buffer";
        Uaccess.insert_pfn task ~gva ~page_gpa:b.pages.(page) ~perms:Memory.Perm.rw);
    fop_poll =
      (fun _task _file ~want_in:_ ~want_out:_ ->
        let ready = Array.exists (fun b -> b.filled) t.buffers in
        { Defs.pollin = ready; pollout = false; poll_wq = Some t.wq });
  }

(** Cameras allow only one process at a time (§5.1). *)
let register t ~path =
  let dev =
    Defs.make_device ~path ~cls:"camera" ~driver:"V4L2/UVC" ~exclusive:true
      (file_ops t)
  in
  Devfs.register (Kernel.devfs t.kernel) dev;
  dev
