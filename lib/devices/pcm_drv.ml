(** Audio: an HDA-like PCM playback device.

    Writes feed a ring that the codec drains at the sample rate.  A
    full ring blocks the writer, so playing an N-second file takes N
    seconds wall-clock regardless of configuration — the §6.1.6
    observation that native, device assignment and Paradice all finish
    the file at the same time. *)

open Oskit

let set_rate_ioctl = Ioctl_num.iow ~typ:'A' ~nr:1 ~size:8 (* { rate u32; channels u32 } *)
let drain_ioctl = Ioctl_num.io ~typ:'A' ~nr:2

type t = {
  kernel : Kernel.t;
  mutable rate_hz : int;
  mutable channels : int;
  mutable sample_bytes : int;
  ring_capacity : int; (* bytes *)
  mutable ring_level : int;
  mutable consumed_bytes : int;
  wq : Wait_queue.t; (* writers wait for ring space *)
  drain_wq : Wait_queue.t;
  codec_wq : Wait_queue.t; (* codec sleeps here while the ring is empty *)
}

let create kernel =
  {
    kernel;
    rate_hz = 44_100;
    channels = 2;
    sample_bytes = 2;
    ring_capacity = 64 * 1024;
    ring_level = 0;
    consumed_bytes = 0;
    wq = Wait_queue.create (Kernel.engine kernel);
    drain_wq = Wait_queue.create (Kernel.engine kernel);
    codec_wq = Wait_queue.create (Kernel.engine kernel);
  }

let consumed_bytes t = t.consumed_bytes

let bytes_per_second t = t.rate_hz * t.channels * t.sample_bytes

(** Ring space available right now: a batched writer that stays under
    this bound never blocks mid-batch. *)
let free_bytes t = t.ring_capacity - t.ring_level

(** Bytes per [period_us] of audio at the current parameters — the
    natural sub-op payload size for a batched period writer. *)
let period_bytes t ~period_us =
  int_of_float (float_of_int (bytes_per_second t) *. period_us /. 1_000_000.)

(* The codec: drains the ring at the configured rate in 10 ms ticks,
   sleeping while the ring is empty so an idle device generates no
   simulation events. *)
let start_codec t =
  let eng = Kernel.engine t.kernel in
  Sim.Engine.spawn eng ~name:"hda-codec" (fun () ->
      let tick_us = 10_000. in
      let rec loop () =
        if t.ring_level = 0 then Wait_queue.sleep t.codec_wq
        else begin
          Sim.Engine.wait tick_us;
          let per_tick = bytes_per_second t / 100 in
          let take = min t.ring_level per_tick in
          t.ring_level <- t.ring_level - take;
          t.consumed_bytes <- t.consumed_bytes + take;
          Wait_queue.wake_all t.wq;
          if t.ring_level = 0 then Wait_queue.wake_all t.drain_wq
        end;
        loop ()
      in
      loop ())

let file_ops t =
  {
    Defs.default_ops with
    Defs.fop_kinds =
      [ Os_flavor.Open; Os_flavor.Release; Os_flavor.Write; Os_flavor.Ioctl;
        Os_flavor.Poll ];
    fop_write =
      (fun task file ~buf ~len ->
        if len <= 0 then Errno.fail Errno.EINVAL "write: bad length";
        (* consume the PCM payload (checks the user pointer) *)
        let (_ : bytes) = Uaccess.copy_from_user task ~uaddr:buf ~len in
        let remaining = ref len in
        while !remaining > 0 do
          let space = t.ring_capacity - t.ring_level in
          if space = 0 then begin
            if file.Defs.nonblock then Errno.fail Errno.EAGAIN "ring full";
            Wait_queue.sleep t.wq
          end
          else begin
            let chunk = min space !remaining in
            t.ring_level <- t.ring_level + chunk;
            remaining := !remaining - chunk;
            Wait_queue.wake_all t.codec_wq
          end
        done;
        len);
    fop_ioctl =
      (fun task _file ~cmd ~arg ->
        (* interface-audit note: this surface is clean — both fields
           are range-checked before use, and a u32 sign wrap through
           Int32.to_int lands below the lower bound and is rejected *)
        if cmd = set_rate_ioctl then begin
          let data = Uaccess.copy_from_user task ~uaddr:(Int64.to_int arg) ~len:8 in
          let rate = Int32.to_int (Bytes.get_int32_le data 0)
          and channels = Int32.to_int (Bytes.get_int32_le data 4) in
          if rate < 8000 || rate > 192_000 || channels < 1 || channels > 8 then
            Errno.fail Errno.EINVAL "bad PCM parameters";
          t.rate_hz <- rate;
          t.channels <- channels;
          0
        end
        else if cmd = drain_ioctl then begin
          while t.ring_level > 0 do
            Wait_queue.sleep t.drain_wq
          done;
          0
        end
        else Errno.fail Errno.ENOTTY "unknown pcm ioctl");
    fop_poll =
      (fun _task _file ~want_in:_ ~want_out:_ ->
        { Defs.pollin = false; pollout = t.ring_level < t.ring_capacity; poll_wq = Some t.wq });
  }

let register t ~path =
  let dev =
    Defs.make_device ~path ~cls:"audio" ~driver:"PCM/snd-hda-intel" (file_ops t)
  in
  Devfs.register (Kernel.devfs t.kernel) dev;
  dev
