(** netmap over an e1000-like NIC (§6.1.2, Figure 2): TX ring and
    buffers in driver memory mmap'd into the application, poll-driven
    txsync, wire-speed drain (1.488 Mpps at 64 B on 1 GbE). *)

val nioc_regif : int
val nioc_txsync : int
val hdr_num_slots : int
val hdr_head : int
val hdr_cur : int
val hdr_tail : int
val slots_off : int
val slot_bytes : int

type t

val create :
  Oskit.Kernel.t ->
  iommu:Memory.Iommu.t ->
  ?num_slots:int ->
  ?buf_size:int ->
  ?gbps:float ->
  unit ->
  t

val tx_packets : t -> int
val tx_bytes : t -> int
val wire_time_us : t -> len:int -> float

(** Start the NIC TX engine (idles until kicked). *)
val start : t -> unit

val txsync : t -> unit
val free_slots : t -> int

(** Slots published but not yet transmitted ([cur..tail) mod ring) —
    sizes a batched txsync descriptor. *)
val pending_tx : t -> int

val ring_slots : t -> int
val file_ops : t -> Oskit.Defs.file_ops

(** Registers single-open (§5.1). *)
val register : t -> path:string -> Oskit.Defs.device

val ring_bytes : t -> int
