(** Audio: an HDA-like PCM playback device whose codec drains the ring
    at the sample rate, so playback takes realtime in every
    configuration (§6.1.6). *)

val set_rate_ioctl : int
val drain_ioctl : int

type t

val create : Oskit.Kernel.t -> t
val consumed_bytes : t -> int
val bytes_per_second : t -> int

(** Ring space available right now — a batched writer staying under
    this bound never blocks mid-batch. *)
val free_bytes : t -> int

(** Bytes per [period_us] of audio at the current parameters (the
    natural sub-op payload size for batched period writes). *)
val period_bytes : t -> period_us:float -> int
val start_codec : t -> unit
val file_ops : t -> Oskit.Defs.file_ops
val register : t -> path:string -> Oskit.Defs.device
